package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
	"gridproxy/internal/wire"
)

// BenchSchema identifies the layout of BENCH_tunnel.json. Bump it if the
// field set changes shape. v2 added per-run bond_conns: captures are now
// parameterized by tunnel connection fan-out (the "bonded-k4" label).
const BenchSchema = "gridproxy/tunnel-bench/v2"

// BenchFile is the committed benchmark artifact: one run per capture
// (before/after a change), each holding every tunnel micro-benchmark.
type BenchFile struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// BenchRun is one labeled capture of the tunnel micro-benchmarks.
// BondConns records the tunnel fan-out the throughput benchmark ran at
// (0 in pre-v2 captures means the implicit single connection).
type BenchRun struct {
	Label     string        `json:"label"`
	BondConns int           `json:"bond_conns,omitempty"`
	Results   []BenchResult `json:"results"`
}

// BenchResult is one benchmark's numbers in benchstat-equivalent units.
type BenchResult struct {
	Name        string  `json:"name"`
	MBPerS      float64 `json:"mb_per_s"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchTunnelThroughput measures multiplexed bulk throughput end to end:
// four concurrent streams pushing 64 KiB writes through one session over
// a memory WAN charging per-write latency, the regime where flush
// coalescing pays. The body lives here so `go test -bench` (via the
// repo-root wrapper) and `gridbench -json` measure the same thing.
//
// Writers are explicit goroutines sharing an op budget rather than
// b.RunParallel, which spawns only GOMAXPROCS workers and exercises no
// concurrency on a single-core machine.
func BenchTunnelThroughput(b *testing.B) { benchTunnelThroughputK(b, 1) }

// BenchTunnelThroughputBonded4 is the same workload sprayed over a
// 4-connection bonded session: each member connection charges its WAN
// latency independently, so bonding buys parallel flushes on a
// latency-dominated path.
func BenchTunnelThroughputBonded4(b *testing.B) { benchTunnelThroughputK(b, 4) }

func benchTunnelThroughputK(b *testing.B, bond int) {
	const (
		streams = 4
		frame   = 64 << 10
		wanLat  = 100 * time.Microsecond
		// Per-connection-direction bandwidth: each bond member is its
		// own shaped flow, the regime bonding exists for (a single
		// conn's per-flow cap — TCP windows, per-flow policers — caps
		// the whole peer pair; k conns aggregate k caps).
		wanBW = 256 << 20
	)
	mem := transport.NewMemNetwork(transport.WithLatency(wanLat), transport.WithBandwidth(wanBW))
	defer mem.Close()
	ln, err := mem.Listen("peer")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Both captures run the same static default window so the bonded
	// delta isolates the transport change, not a flow-control retune.
	cfg := tunnel.Config{}
	reg := tunnel.NewBondRegistry()
	sessCh := make(chan *tunnel.Session, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				s, err := tunnel.ServerConn(conn, reg, cfg, 5*time.Second)
				if err == nil && s != nil {
					sessCh <- s
				}
			}(conn)
		}
	}()
	conn, err := mem.Dial(ctx, "peer")
	if err != nil {
		b.Fatal(err)
	}
	client := tunnel.Client(conn, cfg)
	defer client.Close()
	// The server session materializes on the client's first frame.
	if err := client.Ping(ctx); err != nil {
		b.Fatal(err)
	}
	server := <-sessCh
	defer server.Close()
	if bond > 1 {
		var id tunnel.BondID
		copy(id[:], "bench-bond-id-16")
		reg.Expect(id, server, bond-1)
		for i := 1; i < bond; i++ {
			bc, err := mem.Dial(ctx, "peer")
			if err != nil {
				b.Fatal(err)
			}
			if err := client.AddBondConn(id, i, bc); err != nil {
				b.Fatal(err)
			}
		}
		for client.BondWidth() < bond || server.BondWidth() < bond {
			time.Sleep(time.Millisecond)
		}
	}
	go func() {
		for {
			st, err := server.Accept(ctx)
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, st) }()
		}
	}()
	sts := make([]*tunnel.Stream, streams)
	for i := range sts {
		st, err := client.Open(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		sts[i] = st
	}
	payload := make([]byte, frame)
	var ops atomic.Int64
	ops.Store(int64(b.N))
	var wg sync.WaitGroup
	b.SetBytes(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(st *tunnel.Stream) {
			defer wg.Done()
			for ops.Add(-1) >= 0 {
				if _, err := st.Write(payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(sts[i])
	}
	wg.Wait()
}

// BenchWireRoundTrip measures raw frame codec cost — one frame written
// through the batched writer and read back through the pooled reader —
// with no connection in the way.
func BenchWireRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, 16<<10)
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	r := wire.NewReader(&buf)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteFrame(1, payload); err != nil {
			b.Fatal(err)
		}
		f, err := r.ReadFramePooled()
		if err != nil {
			b.Fatal(err)
		}
		wire.PutPayload(f.Payload)
	}
}

// tunnelBenchmarks names every benchmark captured into BENCH_tunnel.json.
// Each body is parameterized by the bond width of the capture; benchmarks
// without a tunnel in them ignore it.
var tunnelBenchmarks = []struct {
	name string
	fn   func(b *testing.B, bond int)
}{
	{"TunnelThroughput", benchTunnelThroughputK},
	{"WireRoundTrip", func(b *testing.B, _ int) { BenchWireRoundTrip(b) }},
}

// TunnelBench runs the tunnel micro-benchmarks via testing.Benchmark and
// returns them as one labeled run at bond width 1.
func TunnelBench(label string) (BenchRun, error) { return TunnelBenchK(label, 1) }

// TunnelBenchK runs the tunnel micro-benchmarks at the given bond width.
func TunnelBenchK(label string, bond int) (BenchRun, error) {
	if bond < 1 {
		bond = 1
	}
	run := BenchRun{Label: label, BondConns: bond}
	for _, bench := range tunnelBenchmarks {
		fn := bench.fn
		r := testing.Benchmark(func(b *testing.B) { fn(b, bond) })
		if r.N == 0 {
			return BenchRun{}, fmt.Errorf("benchmark %s failed", bench.name)
		}
		run.Results = append(run.Results, BenchResult{
			Name:        bench.name,
			MBPerS:      float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return run, nil
}

// WriteBenchFile captures a labeled benchmark run into the JSON artifact
// at path, preserving runs already recorded under other labels (so a
// "before" capture survives the "after" one) and replacing any run with
// the same label.
func WriteBenchFile(path, label string) (BenchRun, error) {
	return WriteBenchFileK(path, label, 1)
}

// WriteBenchFileK is WriteBenchFile at an explicit bond width (the
// "bonded-k4" capture).
func WriteBenchFileK(path, label string, bond int) (BenchRun, error) {
	run, err := TunnelBenchK(label, bond)
	if err != nil {
		return BenchRun{}, err
	}
	file, err := loadBenchFile(path)
	if err != nil {
		return BenchRun{}, err
	}
	mergeBenchRun(file, run)
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return BenchRun{}, err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return BenchRun{}, err
	}
	return run, nil
}

// loadBenchFile reads an existing artifact, or starts a fresh one if
// path does not exist yet.
func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchFile{Schema: BenchSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if file.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, file.Schema, BenchSchema)
	}
	return &file, nil
}

// mergeBenchRun replaces the run sharing run's label, or appends.
func mergeBenchRun(file *BenchFile, run BenchRun) {
	for i := range file.Runs {
		if file.Runs[i].Label == run.Label {
			file.Runs[i] = run
			return
		}
	}
	file.Runs = append(file.Runs, run)
}
