package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
	"gridproxy/internal/wire"
)

// BenchSchema identifies the layout of BENCH_tunnel.json. Bump it if the
// field set changes shape.
const BenchSchema = "gridproxy/tunnel-bench/v1"

// BenchFile is the committed benchmark artifact: one run per capture
// (before/after a change), each holding every tunnel micro-benchmark.
type BenchFile struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// BenchRun is one labeled capture of the tunnel micro-benchmarks.
type BenchRun struct {
	Label   string        `json:"label"`
	Results []BenchResult `json:"results"`
}

// BenchResult is one benchmark's numbers in benchstat-equivalent units.
type BenchResult struct {
	Name        string  `json:"name"`
	MBPerS      float64 `json:"mb_per_s"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchTunnelThroughput measures multiplexed bulk throughput end to end:
// four concurrent streams pushing 64 KiB writes through one session over
// a memory WAN charging per-write latency, the regime where flush
// coalescing pays. The body lives here so `go test -bench` (via the
// repo-root wrapper) and `gridbench -json` measure the same thing.
//
// Writers are explicit goroutines sharing an op budget rather than
// b.RunParallel, which spawns only GOMAXPROCS workers and exercises no
// concurrency on a single-core machine.
func BenchTunnelThroughput(b *testing.B) {
	const (
		streams = 4
		frame   = 64 << 10
		wanLat  = 100 * time.Microsecond
	)
	mem := transport.NewMemNetwork(transport.WithLatency(wanLat))
	defer mem.Close()
	ln, err := mem.Listen("peer")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sessCh := make(chan *tunnel.Session, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sessCh <- tunnel.Server(conn, tunnel.Config{})
	}()
	conn, err := mem.Dial(ctx, "peer")
	if err != nil {
		b.Fatal(err)
	}
	client := tunnel.Client(conn, tunnel.Config{})
	defer client.Close()
	server := <-sessCh
	defer server.Close()
	go func() {
		for {
			st, err := server.Accept(ctx)
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, st) }()
		}
	}()
	sts := make([]*tunnel.Stream, streams)
	for i := range sts {
		st, err := client.Open(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		sts[i] = st
	}
	payload := make([]byte, frame)
	var ops atomic.Int64
	ops.Store(int64(b.N))
	var wg sync.WaitGroup
	b.SetBytes(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(st *tunnel.Stream) {
			defer wg.Done()
			for ops.Add(-1) >= 0 {
				if _, err := st.Write(payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(sts[i])
	}
	wg.Wait()
}

// BenchWireRoundTrip measures raw frame codec cost — one frame written
// through the batched writer and read back through the pooled reader —
// with no connection in the way.
func BenchWireRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, 16<<10)
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	r := wire.NewReader(&buf)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteFrame(1, payload); err != nil {
			b.Fatal(err)
		}
		f, err := r.ReadFramePooled()
		if err != nil {
			b.Fatal(err)
		}
		wire.PutPayload(f.Payload)
	}
}

// tunnelBenchmarks names every benchmark captured into BENCH_tunnel.json.
var tunnelBenchmarks = []struct {
	name string
	fn   func(*testing.B)
}{
	{"TunnelThroughput", BenchTunnelThroughput},
	{"WireRoundTrip", BenchWireRoundTrip},
}

// TunnelBench runs the tunnel micro-benchmarks via testing.Benchmark and
// returns them as one labeled run.
func TunnelBench(label string) (BenchRun, error) {
	run := BenchRun{Label: label}
	for _, bench := range tunnelBenchmarks {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			return BenchRun{}, fmt.Errorf("benchmark %s failed", bench.name)
		}
		run.Results = append(run.Results, BenchResult{
			Name:        bench.name,
			MBPerS:      float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return run, nil
}

// WriteBenchFile captures a labeled benchmark run into the JSON artifact
// at path, preserving runs already recorded under other labels (so a
// "before" capture survives the "after" one) and replacing any run with
// the same label.
func WriteBenchFile(path, label string) (BenchRun, error) {
	run, err := TunnelBench(label)
	if err != nil {
		return BenchRun{}, err
	}
	file, err := loadBenchFile(path)
	if err != nil {
		return BenchRun{}, err
	}
	mergeBenchRun(file, run)
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return BenchRun{}, err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return BenchRun{}, err
	}
	return run, nil
}

// loadBenchFile reads an existing artifact, or starts a fresh one if
// path does not exist yet.
func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchFile{Schema: BenchSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if file.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, file.Schema, BenchSchema)
	}
	return &file, nil
}

// mergeBenchRun replaces the run sharing run's label, or appends.
func mergeBenchRun(file *BenchFile, run BenchRun) {
	for i := range file.Runs {
		if file.Runs[i].Label == run.Label {
			file.Runs[i] = run
			return
		}
	}
	file.Runs = append(file.Runs, run)
}
