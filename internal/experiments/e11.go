package experiments

import (
	"fmt"
	"math"

	"gridproxy/internal/sim"
)

// E11Row is one (scheme, grid size) control-plane scaling measurement.
type E11Row struct {
	Scheme string // "gossip" or "all-pairs"
	Sites  int
	// Rounds is how many gossip rounds full status convergence took
	// (every directory holding every site's summary); Budget is the
	// c·⌈log₂N⌉ ceiling it is asserted against. The all-pairs baseline
	// "converges" in its single synchronous fan-out.
	Rounds int
	Budget int
	// ConvBytes is mean control bytes per proxy per round during the
	// convergence phase; SteadyBytes the same after the rumor mill has
	// drained (for all-pairs, both are the recurring cost of every
	// refresh — it pays the full fan-out each time).
	ConvBytes   int64
	SteadyBytes int64
	// SteadyMsgs is mean messages per proxy per round at steady state.
	SteadyMsgs float64
	// Tunnels is how many live tunnels a proxy needs for the scheme.
	Tunnels string
}

// E11Config parameterizes experiment E11.
type E11Config struct {
	// Ns lists the grid sizes swept; the steady-state traffic of every
	// size must stay within FlatFactor× of the smallest.
	Ns []int
	// BudgetC is the c in the c·⌈log₂N⌉ convergence-round budget.
	BudgetC int
	// SteadyWindow is how many rounds the steady-state means average
	// over; MaxRounds bounds the whole run (convergence + rumor drain).
	SteadyWindow int
	MaxRounds    int
	// FlatFactor is the allowed steady-state growth across Ns.
	FlatFactor float64
	Seed       int64
}

// DefaultE11 returns the parameters used in EXPERIMENTS.md: the
// acceptance run comparing N=100 against N=1000.
func DefaultE11() E11Config {
	return E11Config{
		Ns:           []int{100, 1000},
		BudgetC:      4,
		SteadyWindow: 25,
		MaxRounds:    400,
		FlatFactor:   2,
		Seed:         1,
	}
}

// E11 measures how the gossip control plane scales against the all-pairs
// status fan-out it replaced. For each N it simulates the single-
// bootstrap worst case (every site initially knows only site 0) over
// real membership directories and real wire encodings, and records:
//
//   - rounds until every directory holds every site's summary, asserted
//     against the c·⌈log₂N⌉ budget (the run FAILS if exceeded, which is
//     what the CI smoke step leans on);
//   - per-proxy bytes/round during convergence — bounded by
//     Fanout·PushLimit, not by N, so it stays roughly flat as the grid
//     grows 10×;
//   - per-proxy bytes/round at steady state, asserted flat within
//     FlatFactor across Ns (empty syncs plus the AntiEntropyFactor/N
//     digest lottery, whose expected cost is N-independent);
//   - the all-pairs baseline measured in the same run from the same
//     summaries: one StatusQuery/StatusReport round trip per peer,
//     per proxy, per refresh, over N-1 standing tunnels.
func E11(cfg E11Config) ([]E11Row, error) {
	var rows []E11Row
	var baseline []E11Row
	var steadies []int64
	for _, n := range cfg.Ns {
		g, err := sim.NewGossipGrid(sim.GossipGridConfig{Sites: n, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("e11 n=%d: %w", n, err)
		}
		budget := cfg.BudgetC * int(math.Ceil(math.Log2(float64(n))))

		// Phase 1: converge, within budget or fail.
		var convBytes int64
		rounds := 0
		for g.Converged() < n {
			if rounds >= budget {
				return nil, fmt.Errorf("e11 n=%d: convergence took more than the %d-round budget (%d/%d directories complete)",
					n, budget, g.Converged(), n)
			}
			st := g.Step()
			rounds++
			convBytes += st.Bytes
		}

		// Phase 2: drain the rumor mill (retransmit budgets running out)
		// so the steady window measures maintenance traffic, not the
		// tail of the initial flood.
		total := rounds
		for g.PendingRumors() > 0 {
			if total >= cfg.MaxRounds {
				return nil, fmt.Errorf("e11 n=%d: rumor mill not drained after %d rounds", n, total)
			}
			g.Step()
			total++
		}

		// Phase 3: steady state.
		var steadyBytes, steadyMsgs int64
		for r := 0; r < cfg.SteadyWindow; r++ {
			st := g.Step()
			steadyBytes += st.Bytes
			steadyMsgs += st.Msgs
		}
		steady := steadyBytes / int64(cfg.SteadyWindow*n)
		steadies = append(steadies, steady)

		rows = append(rows, E11Row{
			Scheme:      "gossip",
			Sites:       n,
			Rounds:      rounds,
			Budget:      budget,
			ConvBytes:   convBytes / int64(rounds*n),
			SteadyBytes: steady,
			SteadyMsgs:  float64(steadyMsgs) / float64(cfg.SteadyWindow*n),
			Tunnels:     "cache-bounded",
		})

		// The baseline, from the same run's summaries.
		apBytes, apMsgs := g.AllPairsRefresh()
		baseline = append(baseline, E11Row{
			Scheme:      "all-pairs",
			Sites:       n,
			Rounds:      1,
			Budget:      1,
			ConvBytes:   apBytes,
			SteadyBytes: apBytes,
			SteadyMsgs:  float64(apMsgs),
			Tunnels:     itoa(n - 1),
		})
	}

	// The flatness assertion: steady-state per-proxy traffic must not
	// grow beyond FlatFactor× across the swept grid sizes.
	for i, s := range steadies {
		if float64(s) > cfg.FlatFactor*float64(steadies[0]) {
			return nil, fmt.Errorf("e11: steady traffic %dB/proxy/round at N=%d exceeds %.1fx the N=%d figure (%dB)",
				s, cfg.Ns[i], cfg.FlatFactor, cfg.Ns[0], steadies[0])
		}
	}
	return append(rows, baseline...), nil
}

// E11Table renders E11 rows.
func E11Table(rows []E11Row) Table {
	t := Table{
		Title:  "E11 — control-plane scaling: gossip directory vs all-pairs status fan-out",
		Claim:  "single-bootstrap status convergence in O(log N) rounds with per-proxy bytes/round flat in N; the all-pairs baseline pays O(N) per proxy per refresh over N-1 tunnels",
		Header: []string{"scheme", "sites", "rounds", "budget", "conv_B/proxy/rd", "steady_B/proxy/rd", "steady_msgs", "tunnels"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, itoa(r.Sites), itoa(r.Rounds), itoa(r.Budget),
			i64(r.ConvBytes), i64(r.SteadyBytes), f2(r.SteadyMsgs), r.Tunnels,
		})
	}
	return t
}
