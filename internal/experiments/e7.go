package experiments

import (
	"context"
	"fmt"
	"time"

	"gridproxy/internal/peerlink"
	"gridproxy/internal/site"
)

// E7Row is one failure-containment measurement.
type E7Row struct {
	Sites        int
	NodesPerSite int
	// NodesBefore/After are the schedulable candidates seen by a
	// surviving proxy before and after one site's proxy dies.
	NodesBefore int
	NodesAfter  int
	// SurvivingFrac = NodesAfter / NodesBefore.
	SurvivingFrac float64
	// ExpectedFrac is (sites-1)/sites — the paper's containment claim:
	// losing one proxy costs exactly that site's resources.
	ExpectedFrac float64
	// Detection is how long the surviving proxy took to notice and
	// evict the dead peer.
	Detection time.Duration
	// PlacementOK reports whether a new placement succeeded on the
	// survivors immediately after detection.
	PlacementOK bool
	// Reconnect is how long after the dead site restarted (at the same
	// addresses) the survivor's supervised link re-established peering
	// and re-learned the full inventory — with no operator action.
	Reconnect time.Duration
	// RecoveredOK reports whether the full pre-failure inventory came
	// back after the restart.
	RecoveredOK bool
}

// E7Config parameterizes experiment E7.
type E7Config struct {
	Shapes [][2]int
}

// DefaultE7 returns the parameters used in EXPERIMENTS.md.
func DefaultE7() E7Config {
	return E7Config{Shapes: [][2]int{{2, 4}, {3, 4}, {5, 4}}}
}

// E7 kills one site's proxy and measures what the rest of the grid loses,
// then restarts the site and measures how long unsupervised recovery
// takes. The paper: "This distributed control reduces the effect of
// failures on a given site or proxy." Expected shape: the surviving
// fraction of schedulable nodes equals (sites-1)/sites, new placements
// keep succeeding, and after the restart the supervised peer links
// re-establish the full grid without operator action.
func E7(cfg E7Config) ([]E7Row, error) {
	var rows []E7Row
	for _, shape := range cfg.Shapes {
		row, err := runE7Shape(shape[0], shape[1])
		if err != nil {
			return nil, fmt.Errorf("e7 %dx%d: %w", shape[0], shape[1], err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE7Shape(sitesCount, nodesPerSite int) (E7Row, error) {
	tbCfg := site.TestbedConfig{
		GridName: "e7",
		// Fast backoff so the post-restart reconnect measurement reflects
		// the supervisor, not a long default backoff; heartbeats off so
		// detection measures the session-death path alone.
		Lifecycle: peerlink.Config{
			BackoffMin:        20 * time.Millisecond,
			BackoffMax:        500 * time.Millisecond,
			HeartbeatInterval: -1,
		},
	}
	for s := 0; s < sitesCount; s++ {
		tbCfg.Sites = append(tbCfg.Sites, site.SiteSpec{
			Name:  fmt.Sprintf("site%d", s),
			Nodes: site.UniformNodes(nodesPerSite, 1),
		})
	}
	tb, err := site.NewTestbed(tbCfg)
	if err != nil {
		return E7Row{}, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		return E7Row{}, err
	}
	survivor := tb.Sites[0].Proxy
	before := len(survivor.Candidates())

	// Kill the last site's proxy (and its nodes with it).
	victim := tb.Sites[len(tb.Sites)-1]
	start := time.Now()
	victim.Close()

	// Wait for the survivor to evict the dead peer.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(survivor.Peers()) == sitesCount-2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	detection := time.Since(start)
	after := len(survivor.Candidates())

	// The grid must still place work on the survivors.
	placementOK := false
	if _, err := survivor.Placement(nodesPerSite); err == nil {
		placementOK = true
	}

	// Recovery: boot a replacement site at the same addresses and time
	// how long the survivor's supervised link takes to redial, re-peer,
	// and restore the full inventory — no operator reconnect.
	restart := time.Now()
	var reconnect time.Duration
	recoveredOK := false
	if _, err := tb.RestartSite(victim.Name); err == nil {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if len(survivor.Candidates()) == before {
				recoveredOK = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		reconnect = time.Since(restart)
	}

	row := E7Row{
		Sites:        sitesCount,
		NodesPerSite: nodesPerSite,
		NodesBefore:  before,
		NodesAfter:   after,
		ExpectedFrac: float64(sitesCount-1) / float64(sitesCount),
		Detection:    detection,
		PlacementOK:  placementOK,
		Reconnect:    reconnect,
		RecoveredOK:  recoveredOK,
	}
	if before > 0 {
		row.SurvivingFrac = float64(after) / float64(before)
	}
	return row, nil
}

// E7Table renders E7 rows.
func E7Table(rows []E7Row) Table {
	t := Table{
		Title:  "E7 — failure containment: one proxy dies, then restarts",
		Claim:  "distributed control limits a proxy failure to its own site's resources; supervised links restore the grid unattended",
		Header: []string{"sites", "nodes/site", "nodes_before", "nodes_after", "surviving_frac", "expected_frac", "detection", "placement_ok", "reconnect", "recovered_ok"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.Sites), itoa(r.NodesPerSite), itoa(r.NodesBefore), itoa(r.NodesAfter),
			f2(r.SurvivingFrac), f2(r.ExpectedFrac), dur(r.Detection), fmt.Sprintf("%v", r.PlacementOK),
			dur(r.Reconnect), fmt.Sprintf("%v", r.RecoveredOK),
		})
	}
	return t
}
