package experiments

import (
	"fmt"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/metrics"
	"gridproxy/internal/ticket"
)

// E5Row is one (scheme, requests-per-session) authentication measurement.
type E5Row struct {
	Scheme    string // "per-request" or "ticket"
	Requests  int
	AuthOps   int64 // expensive password/signature verifications
	TicketOps int64 // cheap HMAC validations
	Total     time.Duration
	PerReq    time.Duration
}

// E5Config parameterizes experiment E5.
type E5Config struct {
	// RequestCounts sweeps session lengths.
	RequestCounts []int
}

// DefaultE5 returns the parameters used in EXPERIMENTS.md.
func DefaultE5() E5Config {
	return E5Config{RequestCounts: []int{1, 10, 100, 1000}}
}

// E5 compares the paper's first-phase authentication (credentials
// verified on every request) with its foreseen Kerberos-style replacement
// ("a single authentication per session, with the access rights stored
// safely in a ticket and reused transparently"). Expected shape: the
// ticket scheme performs exactly one expensive operation per session and
// amortizes to near-zero per-request cost.
func E5(cfg E5Config) ([]E5Row, error) {
	var rows []E5Row
	for _, requests := range cfg.RequestCounts {
		perReq, err := runE5PerRequest(requests)
		if err != nil {
			return nil, fmt.Errorf("e5 per-request %d: %w", requests, err)
		}
		rows = append(rows, perReq)
		tick, err := runE5Ticket(requests)
		if err != nil {
			return nil, fmt.Errorf("e5 ticket %d: %w", requests, err)
		}
		rows = append(rows, tick)
	}
	return rows, nil
}

func newE5Store(reg *metrics.Registry) (*auth.Store, error) {
	store, err := auth.NewStore(auth.WithMetrics(reg))
	if err != nil {
		return nil, err
	}
	if err := store.AddUser("alice", "correct horse battery staple"); err != nil {
		return nil, err
	}
	return store, nil
}

func runE5PerRequest(requests int) (E5Row, error) {
	reg := metrics.NewRegistry()
	store, err := newE5Store(reg)
	if err != nil {
		return E5Row{}, err
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		if err := store.VerifyPassword("alice", "correct horse battery staple"); err != nil {
			return E5Row{}, err
		}
	}
	total := time.Since(start)
	return E5Row{
		Scheme:    "per-request",
		Requests:  requests,
		AuthOps:   reg.Counter(metrics.AuthOps).Value(),
		TicketOps: reg.Counter(metrics.TicketOps).Value(),
		Total:     total,
		PerReq:    total / time.Duration(requests),
	}, nil
}

func runE5Ticket(requests int) (E5Row, error) {
	reg := metrics.NewRegistry()
	store, err := newE5Store(reg)
	if err != nil {
		return E5Row{}, err
	}
	tgs, err := ticket.NewGrantingService(store, ticket.WithMetrics(reg))
	if err != nil {
		return E5Row{}, err
	}
	key, err := tgs.RegisterService("proxy:siteb")
	if err != nil {
		return E5Row{}, err
	}
	validator := ticket.NewValidator("proxy:siteb", key, reg)

	start := time.Now()
	// Single sign-on (the one expensive operation of the session).
	tgt, err := tgs.SignOnPassword("alice", "correct horse battery staple")
	if err != nil {
		return E5Row{}, err
	}
	tick, err := tgs.GrantTicket(tgt, "proxy:siteb")
	if err != nil {
		return E5Row{}, err
	}
	// Every request validates the ticket (one HMAC), no user
	// interaction, no password.
	for i := 0; i < requests; i++ {
		if _, err := validator.Validate(tick); err != nil {
			return E5Row{}, err
		}
	}
	total := time.Since(start)
	return E5Row{
		Scheme:    "ticket",
		Requests:  requests,
		AuthOps:   reg.Counter(metrics.AuthOps).Value(),
		TicketOps: reg.Counter(metrics.TicketOps).Value(),
		Total:     total,
		PerReq:    total / time.Duration(requests),
	}, nil
}

// E5Table renders E5 rows.
func E5Table(rows []E5Row) Table {
	t := Table{
		Title:  "E5 — per-request authentication vs Kerberos-style tickets",
		Claim:  "tickets need a single expensive authentication per session, reused transparently",
		Header: []string{"scheme", "requests", "auth_ops", "ticket_ops", "total", "per_request"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, itoa(r.Requests), i64(r.AuthOps), i64(r.TicketOps), dur(r.Total), dur(r.PerReq),
		})
	}
	return t
}
