package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"gridproxy/internal/metrics"
	"gridproxy/internal/site"
	"gridproxy/internal/stage"
	"gridproxy/internal/tunnel"
)

// E10Row is one data-plane staging measurement: a blob pulled cold
// across a latency-shaped WAN with a given stripe count, then pulled
// again warm.
type E10Row struct {
	Stripes int
	// Bond is the tunnel connection fan-out between the two proxies (1 =
	// the classic single connection).
	Bond    int
	BlobMB  float64
	ChunkKB int
	// Cold transfer: the destination store is empty, every byte moves.
	ColdTime  time.Duration
	ColdMBps  float64
	ColdBytes int64
	// Warm transfer: the blob is already content-addressed in the
	// destination store, so the pull is a cache hit and moves nothing.
	WarmTime  time.Duration
	WarmBytes int64
	CacheHits int64
}

// E10Config parameterizes experiment E10.
type E10Config struct {
	// BlobBytes is the staged payload size.
	BlobBytes int
	// ChunkSize is the transfer chunk size.
	ChunkSize int
	// StripeCounts lists the parallel-stream counts to sweep.
	StripeCounts []int
	// BondConns lists the tunnel connection fan-outs to sweep; each
	// member connection charges its WAN latency independently, so bonding
	// multiplies the flush parallelism stripes already exploit.
	BondConns []int
	// WANLatency shapes the inter-site links. On the in-memory transport
	// the latency is charged per underlying write on the sender; with the
	// batched wire.Writer, concurrent stripes coalesce their frames into
	// shared flushes, so each write carries more payload and striping
	// improves cold throughput (see the E10 notes in EXPERIMENTS.md).
	WANLatency time.Duration
}

// DefaultE10 returns the parameters used in EXPERIMENTS.md.
func DefaultE10() E10Config {
	return E10Config{
		BlobBytes:    8 << 20,
		ChunkSize:    128 << 10,
		StripeCounts: []int{1, 2, 4, 8},
		BondConns:    []int{1, 4},
		WANLatency:   2 * time.Millisecond,
	}
}

// E10 measures the content-addressed data plane: one blob is staged from
// an origin site to a destination over dedicated tunnel data streams,
// cold (empty destination store) and warm (already held). The sweep over
// stripe counts shows cold throughput rising with stripes — the batched
// wire.Writer coalesces concurrent stripes' frames into shared flushes,
// amortizing the per-write WAN latency across them — while the warm pull
// is a pure cache hit and moves zero payload bytes: the dedupe the job
// launch path relies on for fast relaunches.
func E10(cfg E10Config) ([]E10Row, error) {
	bonds := cfg.BondConns
	if len(bonds) == 0 {
		bonds = []int{1}
	}
	var rows []E10Row
	for _, bond := range bonds {
		for _, stripes := range cfg.StripeCounts {
			row, err := runE10Stripes(cfg, stripes, bond)
			if err != nil {
				return nil, fmt.Errorf("e10 stripes=%d bond=%d: %w", stripes, bond, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runE10Stripes(cfg E10Config, stripes, bond int) (E10Row, error) {
	reg := metrics.NewRegistry()
	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName:   "e10",
		Metrics:    reg,
		WANLatency: cfg.WANLatency,
		Tunnel:     tunnel.Config{BondConns: bond},
		Stage: stage.Config{
			ChunkSize: cfg.ChunkSize,
			Stripes:   stripes,
		},
		Sites: []site.SiteSpec{
			{Name: "origin", Nodes: site.UniformNodes(1, 1)},
			{Name: "dest", Nodes: site.UniformNodes(1, 1)},
		},
	})
	if err != nil {
		return E10Row{}, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		return E10Row{}, err
	}

	blob := make([]byte, cfg.BlobBytes)
	rand.New(rand.NewSource(int64(stripes))).Read(blob)
	ref := tb.Sites[0].Proxy.Store().Put(blob)
	dest := tb.Sites[1].Proxy

	row := E10Row{
		Stripes: stripes,
		Bond:    bond,
		BlobMB:  float64(cfg.BlobBytes) / (1 << 20),
		ChunkKB: cfg.ChunkSize >> 10,
	}

	start := time.Now()
	if err := dest.PullBlob(ctx, "origin", ref.Hash); err != nil {
		return E10Row{}, fmt.Errorf("cold pull: %w", err)
	}
	row.ColdTime = time.Since(start)
	row.ColdBytes = reg.Counter(metrics.StageBytesReceived).Value()
	row.ColdMBps = row.BlobMB / row.ColdTime.Seconds()

	start = time.Now()
	if err := dest.PullBlob(ctx, "origin", ref.Hash); err != nil {
		return E10Row{}, fmt.Errorf("warm pull: %w", err)
	}
	row.WarmTime = time.Since(start)
	row.WarmBytes = reg.Counter(metrics.StageBytesReceived).Value() - row.ColdBytes
	row.CacheHits = reg.Counter(metrics.StageCacheHits).Value()
	return row, nil
}

// E10Table renders E10 rows.
func E10Table(rows []E10Row) Table {
	t := Table{
		Title:  "E10 — data plane: striped cross-site staging, cold vs warm",
		Claim:  "a warm (content-addressed) restage moves zero payload bytes; cold stripes coalesce into shared flushes on the WAN link",
		Header: []string{"stripes", "bond", "blob_mb", "chunk_kb", "cold_time", "cold_MB/s", "cold_bytes", "warm_time", "warm_bytes", "cache_hits"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.Stripes), itoa(r.Bond), f1(r.BlobMB), itoa(r.ChunkKB),
			dur(r.ColdTime), f1(r.ColdMBps), i64(r.ColdBytes),
			dur(r.WarmTime), i64(r.WarmBytes), i64(r.CacheHits),
		})
	}
	return t
}
