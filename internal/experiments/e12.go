package experiments

import (
	"fmt"

	"gridproxy/internal/failure"
	"gridproxy/internal/sim"
)

// E12 is the partition-tolerance acceptance run: an N-site simulated
// grid (real membership directories, real wire encodings, the seeded
// failure.Chaos matrix) is driven through a majority/minority
// partition, a gray (lossy but routed) site, and a link flap, then
// healed. The run FAILS — an error, not a table row — unless the
// control plane meets four bars:
//
//  1. zero false-dead verdicts between sites the script never cut
//     (the gray site must not be convicted; indirect probing and
//     Lifeguard health absorb its losses);
//  2. the scenario forces split-brain double-execution during the
//     partition (otherwise the fencing bar below proves nothing);
//  3. after the heal, every directory re-learns every site within
//     HealBudget gossip rounds (resurrection probes + refutation);
//  4. after fences deliver, zero ranks run at two sites — and the
//     whole run replays bit-for-bit from the printed seed.

// E12Config parameterizes experiment E12.
type E12Config struct {
	// Sites is the grid size N; Minority is how many sites the script
	// partitions away from the rest.
	Sites    int
	Minority int
	// GrayLoss is the loss probability on every link touching the gray
	// site (a majority site that stays routed throughout).
	GrayLoss float64
	// ConvergeBudget bounds the pre-fault summary-convergence phase.
	ConvergeBudget int
	// PartitionRounds is how long the partition holds — longer than
	// the suspicion pipeline so the majority convicts the minority and
	// reschedules its ranks.
	PartitionRounds int
	// HealBudget is the reconvergence bar: rounds after the heal within
	// which no directory may still hold a Dead entry.
	HealBudget int
	// SettleRounds run after reconvergence so fences deliver and the
	// ledger quiesces before the final double-run check.
	SettleRounds int
	Seed         int64
}

// DefaultE12 returns the acceptance-run parameters: N=50 with a
// 10-site minority, a 30%-lossy gray site, and the 4-round
// reconvergence budget.
func DefaultE12() E12Config {
	return E12Config{
		Sites:           50,
		Minority:        10,
		GrayLoss:        0.3,
		ConvergeBudget:  80,
		PartitionRounds: 30,
		HealBudget:      4,
		SettleRounds:    8,
		Seed:            1,
	}
}

// E12Row is one phase of the scenario with the counters it ended at.
type E12Row struct {
	Phase      string
	Rounds     int // rounds this phase took
	FalseDead  int // cumulative false-dead verdicts (bar: 0)
	DeadTrans  int // cumulative Dead transitions (legit + false)
	DoubleRuns int // ranks live at 2+ sites at phase end
	Resched    int // cumulative origin reschedules
	Fences     int // cumulative fences delivered
	Vetoes     int // cumulative indirect-probe vetoes of suspicion
}

// e12Result is one full run: its table rows plus the fingerprint the
// determinism bar compares across two runs from the same seed.
type e12Result struct {
	rows        []E12Row
	fingerprint string
}

// E12 runs the scenario twice from the same seed and enforces all
// acceptance bars, including that both runs are identical.
func E12(cfg E12Config) ([]E12Row, error) {
	first, err := e12Run(cfg)
	if err != nil {
		return nil, err
	}
	second, err := e12Run(cfg)
	if err != nil {
		return nil, err
	}
	if first.fingerprint != second.fingerprint {
		return nil, fmt.Errorf("e12: run not reproducible from seed %d:\n  first:  %s\n  second: %s",
			cfg.Seed, first.fingerprint, second.fingerprint)
	}
	return first.rows, nil
}

// e12Run executes one full scenario and checks every per-run bar.
func e12Run(cfg E12Config) (*e12Result, error) {
	if cfg.Minority < 1 || cfg.Minority >= cfg.Sites/2 {
		return nil, fmt.Errorf("e12: minority %d must be 1..N/2-1 of %d sites", cfg.Minority, cfg.Sites)
	}
	g, err := sim.NewChaosGrid(sim.ChaosGridConfig{Sites: cfg.Sites, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	res := &e12Result{}

	// Phase 1: converge. Directories know all sites from round 0 but
	// summaries still spread by gossip; faults wait for a quiet grid.
	converged := 0
	for r := 1; r <= cfg.ConvergeBudget; r++ {
		g.Step()
		if g.Converged() {
			converged = r
			break
		}
	}
	if converged == 0 {
		return nil, fmt.Errorf("e12: no summary convergence within %d rounds (seed %d)", cfg.ConvergeBudget, cfg.Seed)
	}
	res.snap(g, "converge", converged)

	// Script the fault schedule. The minority is the top Minority site
	// indices; the gray site is a majority site whose links all lose
	// GrayLoss of exchanges; one majority pair flaps (an asymmetric cut
	// healed a few rounds later).
	majority := make([]string, 0, cfg.Sites-cfg.Minority)
	minority := make([]string, 0, cfg.Minority)
	for i := 0; i < cfg.Sites; i++ {
		if i >= cfg.Sites-cfg.Minority {
			minority = append(minority, g.Name(i))
		} else {
			majority = append(majority, g.Name(i))
		}
	}
	gray := g.Name(3 % (cfg.Sites - cfg.Minority))
	flapA, flapB := g.Name(1), g.Name(2)
	faultAt := g.Round() + 1
	healAt := faultAt + cfg.PartitionRounds
	ch := g.Chaos()
	ch.At(faultAt, func(c *failure.Chaos) {
		c.Partition(majority, minority)
		for i := 0; i < cfg.Sites; i++ {
			site := g.Name(i)
			if site == gray {
				continue
			}
			c.SetShape(gray, site, failure.Shape{Loss: cfg.GrayLoss})
			c.SetShape(site, gray, failure.Shape{Loss: cfg.GrayLoss})
		}
	})
	ch.At(faultAt+5, func(c *failure.Chaos) { c.CutOneWay(flapA, flapB) })
	ch.At(faultAt+8, func(c *failure.Chaos) { c.HealLink(flapA, flapB) })
	ch.At(healAt, func(c *failure.Chaos) {
		c.HealAll()
		for i := 0; i < cfg.Sites; i++ {
			site := g.Name(i)
			if site != gray {
				c.SetShape(gray, site, failure.Shape{})
				c.SetShape(site, gray, failure.Shape{})
			}
		}
	})

	// Phase 2: partition + gray + flap. The majority must convict the
	// minority and reschedule its ranks; the stale copies keep running
	// on the far side — the double-run the fence protocol exists for.
	maxDouble := 0
	for r := 0; r < cfg.PartitionRounds; r++ {
		g.Step()
		if d := g.DoubleRuns(); d > maxDouble {
			maxDouble = d
		}
	}
	res.snap(g, "partition", cfg.PartitionRounds)
	if maxDouble == 0 {
		return nil, fmt.Errorf("e12: partition forced no double-run ranks (seed %d) — scenario too weak to test fencing", cfg.Seed)
	}

	// Phase 3: heal. The heal event fires on the first step of this
	// phase; every directory must drop its last Dead verdict within
	// HealBudget rounds of it.
	healRounds := 0
	for r := 1; r <= cfg.HealBudget; r++ {
		g.Step()
		if g.DeadLinks() == 0 {
			healRounds = r
			break
		}
	}
	if healRounds == 0 {
		return nil, fmt.Errorf("e12: %d Dead verdicts still held %d rounds after heal (seed %d), budget %d",
			g.DeadLinks(), cfg.HealBudget, cfg.Seed, cfg.HealBudget)
	}
	res.snap(g, "reconverge", healRounds)

	// Phase 4: settle. Fences deliver across the healed links and the
	// ledger must end single-copy.
	for r := 0; r < cfg.SettleRounds; r++ {
		g.Step()
	}
	res.snap(g, "settle", cfg.SettleRounds)
	if g.FalseDead != 0 {
		return nil, fmt.Errorf("e12: %d false-dead verdicts between never-cut sites (seed %d)", g.FalseDead, cfg.Seed)
	}
	if d := g.DoubleRuns(); d != 0 {
		return nil, fmt.Errorf("e12: %d ranks still running at two sites after heal+fences (seed %d)", d, cfg.Seed)
	}
	if pf := g.PendingFences(); pf != 0 {
		return nil, fmt.Errorf("e12: %d fences undelivered after settle (seed %d)", pf, cfg.Seed)
	}
	return res, nil
}

// snap appends a phase row and extends the determinism fingerprint.
func (r *e12Result) snap(g *sim.ChaosGrid, phase string, rounds int) {
	row := E12Row{
		Phase:      phase,
		Rounds:     rounds,
		FalseDead:  g.FalseDead,
		DeadTrans:  g.DeadTransitions,
		DoubleRuns: g.DoubleRuns(),
		Resched:    g.Reschedules,
		Fences:     g.FencesDelivered,
		Vetoes:     g.ProbeVetoes,
	}
	r.rows = append(r.rows, row)
	r.fingerprint += fmt.Sprintf("[%s r%d fd%d dt%d dr%d rs%d fn%d vt%d esc%d]",
		phase, rounds, row.FalseDead, row.DeadTrans, row.DoubleRuns, row.Resched, row.Fences, row.Vetoes, g.Escalations)
}

// E12Table renders the phase table for EXPERIMENTS.md.
func E12Table(rows []E12Row) Table {
	t := Table{
		Title:  "E12: partition tolerance — false-dead, reconvergence, split-brain fencing",
		Claim:  "under partition+gray+flap, no mutually-reachable site is declared dead, the grid reconverges within 4 rounds of the heal, and epoch fences end every double-run",
		Header: []string{"phase", "rounds", "false-dead", "dead-trans", "double-runs", "resched", "fences", "probe-vetoes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Phase,
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.FalseDead),
			fmt.Sprintf("%d", r.DeadTrans),
			fmt.Sprintf("%d", r.DoubleRuns),
			fmt.Sprintf("%d", r.Resched),
			fmt.Sprintf("%d", r.Fences),
			fmt.Sprintf("%d", r.Vetoes),
		})
	}
	return t
}
