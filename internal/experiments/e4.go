package experiments

import (
	"context"
	"fmt"
	"time"

	"gridproxy/internal/metrics"
	"gridproxy/internal/peerlink"
	"gridproxy/internal/site"
)

// E4Row is one (scheme, grid shape) control-traffic measurement.
type E4Row struct {
	Scheme       string // "site-compiled", "central-poll", or "site-cached"
	Sites        int
	NodesPerSite int
	// ControlMsgs and ControlBytes are the control-channel cost of one
	// full grid status refresh.
	ControlMsgs  int64
	ControlBytes int64
}

// E4Config parameterizes experiment E4.
type E4Config struct {
	// Shapes lists (sites, nodesPerSite) pairs to sweep.
	Shapes [][2]int
}

// DefaultE4 returns the parameters used in EXPERIMENTS.md.
func DefaultE4() E4Config {
	return E4Config{Shapes: [][2]int{{2, 4}, {4, 8}, {4, 16}, {8, 16}}}
}

// E4 measures the inter-site control traffic of one full grid status read
// under three schemes, all over the same proxies and tunnels:
//
//   - "site-compiled": the paper's distributed collection ("each proxy
//     responsible for the collection and control of the site where it is
//     located … the global status is obtained by compilation of all the
//     sites' data") — one control round trip per remote site;
//   - "central-poll": a centralized monitor that polls every node
//     individually — one round trip per remote node;
//   - "site-cached": the proxy's TTL-cached global view — a warm read
//     costs zero control messages, the background refresher amortizing
//     the per-site queries across many reads.
func E4(cfg E4Config) ([]E4Row, error) {
	var rows []E4Row
	for _, shape := range cfg.Shapes {
		sites, nodes := shape[0], shape[1]
		pair, err := runE4Shape(sites, nodes)
		if err != nil {
			return nil, fmt.Errorf("e4 %dx%d: %w", sites, nodes, err)
		}
		rows = append(rows, pair...)
	}
	return rows, nil
}

func runE4Shape(sitesCount, nodesPerSite int) ([]E4Row, error) {
	reg := metrics.NewRegistry()
	tbCfg := site.TestbedConfig{
		GridName: "e4",
		Metrics:  reg,
		// Heartbeats off so probe traffic cannot pollute the message
		// counts; a long StatusTTL so the "site-cached" row reads a warm
		// cache instead of racing the background refresher.
		Lifecycle: peerlink.Config{HeartbeatInterval: -1, StatusTTL: time.Hour},
	}
	for s := 0; s < sitesCount; s++ {
		tbCfg.Sites = append(tbCfg.Sites, site.SiteSpec{
			Name:  fmt.Sprintf("site%d", s),
			Nodes: site.UniformNodes(nodesPerSite, 1),
		})
	}
	tb, err := site.NewTestbed(tbCfg)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		return nil, err
	}
	origin := tb.Sites[0].Proxy

	// Scheme 1: the paper's distributed collection. One status query per
	// remote site; each proxy compiles its own nodes locally (free on
	// the control channel). FreshStatus defeats the TTL cache so the row
	// measures the true per-request cost.
	reg.Reset()
	if _, err := origin.FreshStatus(ctx, nil); err != nil {
		return nil, err
	}
	distributed := E4Row{
		Scheme:       "site-compiled",
		Sites:        sitesCount,
		NodesPerSite: nodesPerSite,
		ControlMsgs:  reg.Counter(metrics.ControlMessages).Value(),
		ControlBytes: reg.Counter(metrics.ControlBytes).Value(),
	}

	// Scheme 2: centralized polling. The monitor contacts every remote
	// node individually (emulated as one control round trip per node
	// through the same channels).
	reg.Reset()
	for _, s := range tb.Sites[1:] {
		for range s.Nodes {
			if err := origin.PingPeer(ctx, s.Name); err != nil {
				return nil, err
			}
		}
	}
	central := E4Row{
		Scheme:       "central-poll",
		Sites:        sitesCount,
		NodesPerSite: nodesPerSite,
		ControlMsgs:  reg.Counter(metrics.ControlMessages).Value(),
		ControlBytes: reg.Counter(metrics.ControlBytes).Value(),
	}

	// Scheme 3: the TTL-cached global view. The FreshStatus call above
	// warmed the cache; a read inside the TTL is answered entirely from
	// local state.
	reg.Reset()
	if _, err := origin.Status(ctx, nil); err != nil {
		return nil, err
	}
	cached := E4Row{
		Scheme:       "site-cached",
		Sites:        sitesCount,
		NodesPerSite: nodesPerSite,
		ControlMsgs:  reg.Counter(metrics.ControlMessages).Value(),
		ControlBytes: reg.Counter(metrics.ControlBytes).Value(),
	}
	return []E4Row{distributed, central, cached}, nil
}

// E4Table renders E4 rows.
func E4Table(rows []E4Row) Table {
	t := Table{
		Title:  "E4 — control traffic: site-compiled status vs per-node central polling vs TTL cache",
		Claim:  "distributed per-site collection reduces control communication (O(sites) vs O(nodes)); TTL caching drops a warm read to zero",
		Header: []string{"scheme", "sites", "nodes/site", "ctrl_msgs", "ctrl_bytes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, itoa(r.Sites), itoa(r.NodesPerSite), i64(r.ControlMsgs), i64(r.ControlBytes),
		})
	}
	return t
}
