// Package experiments implements the paper's evaluation harness. The
// paper (a workshop architecture paper) states its results as qualitative
// claims rather than numbered tables; each experiment here turns one claim
// into a measured table. See DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded results.
//
//	E1  Fig. 3(a)/(b)  MPI local vs proxy-multiplexed across sites
//	E2  §3             crypto cost at site edges vs on every node
//	E3  §3             load balancing vs MPI's round-robin placement
//	E4  §3             site-compiled monitoring vs polling every node
//	E5  §3             Kerberos-style tickets vs per-request auth
//	E6  §1/§3          deployment footprint (modules per machine)
//	E7  §3             failure containment when a proxy dies
//	E8  §3             one multiplexed tunnel vs connection-per-stream
//	E9  §3             job survival: rank rescheduling across site death
//	E10 §3             data plane: striped cross-site staging, cold vs warm
//	E11 §3             control-plane scaling: gossip directory vs all-pairs
//	E12 §3             partition tolerance: false-dead, fencing, reconvergence
//	E13 L3             gateway admission control under 1x/4x/16x overload
//
// Every experiment returns typed rows; cmd/gridbench renders them as the
// tables recorded in EXPERIMENTS.md, and bench_test.go exposes the same
// code as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result: a header plus rows of cells,
// ready for text output.
type Table struct {
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// cell helpers keep row construction terse.
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func dur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
