package experiments

import (
	"context"
	"fmt"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/metrics"
	"gridproxy/internal/mpi"
	"gridproxy/internal/mpirun"
	"gridproxy/internal/node"
	"gridproxy/internal/site"
)

// E1Row is one (mode, message size) measurement of MPI ping-pong through
// the architecture.
type E1Row struct {
	Mode          string // "local" (Fig 3a) or "proxy" (Fig 3b)
	MsgBytes      int
	Rounds        int
	RTT           time.Duration // mean round trip
	ThroughputMBs float64
	TunnelBytes   int64 // bytes that crossed the encrypted tunnel
}

// E1Config parameterizes experiment E1.
type E1Config struct {
	// MsgSizes are the ping-pong payload sizes.
	MsgSizes []int
	// Rounds per size.
	Rounds int
	// WANLatency shapes the simulated inter-site link for the proxy
	// mode (zero = unshaped loopback).
	WANLatency time.Duration
}

// DefaultE1 returns the parameters used in EXPERIMENTS.md.
func DefaultE1() E1Config {
	return E1Config{
		MsgSizes: []int{1 << 10, 16 << 10, 64 << 10},
		Rounds:   50,
	}
}

// E1 measures MPI ping-pong between two ranks placed (a) on two nodes of
// one site (Figure 3a: direct local communication, no proxy involvement)
// and (b) on nodes of two different sites (Figure 3b: traffic multiplexed
// by the proxies through the TLS tunnel). The reproduction criterion: the
// proxy path carries identical payloads (correctness) at a modest latency
// premium, and ONLY the proxy path shows tunnel bytes.
func E1(cfg E1Config) ([]E1Row, error) {
	var rows []E1Row
	for _, mode := range []string{"local", "proxy"} {
		for _, size := range cfg.MsgSizes {
			row, err := runE1Case(mode, size, cfg)
			if err != nil {
				return nil, fmt.Errorf("e1 %s/%d: %w", mode, size, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runE1Case(mode string, msgBytes int, cfg E1Config) (E1Row, error) {
	reg := metrics.NewRegistry()
	tbCfg := site.TestbedConfig{GridName: "e1", Metrics: reg}
	switch mode {
	case "local":
		tbCfg.Sites = []site.SiteSpec{{Name: "sitea", Nodes: site.UniformNodes(2, 1)}}
	case "proxy":
		tbCfg.Sites = []site.SiteSpec{
			{Name: "sitea", Nodes: site.UniformNodes(1, 1)},
			{Name: "siteb", Nodes: site.UniformNodes(1, 1)},
		}
		tbCfg.WANLatency = cfg.WANLatency
	default:
		return E1Row{}, fmt.Errorf("unknown mode %q", mode)
	}
	tb, err := site.NewTestbed(tbCfg)
	if err != nil {
		return E1Row{}, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		return E1Row{}, err
	}

	rttCh := make(chan time.Duration, 1)
	tb.RegisterProgram("pingpong", mpirun.Program(
		func(ctx context.Context, w *mpi.World, env node.Env) error {
			payload := make([]byte, msgBytes)
			for i := range payload {
				payload[i] = byte(i)
			}
			// Warm up the connection path before timing.
			if err := w.Barrier(ctx); err != nil {
				return err
			}
			if w.Rank() == 0 {
				start := time.Now()
				for i := 0; i < cfg.Rounds; i++ {
					if err := w.Send(ctx, 1, i, payload); err != nil {
						return err
					}
					m, err := w.Recv(ctx, 1, i)
					if err != nil {
						return err
					}
					if len(m.Data) != msgBytes {
						return fmt.Errorf("echo truncated: %d of %d", len(m.Data), msgBytes)
					}
				}
				rttCh <- time.Since(start) / time.Duration(cfg.Rounds)
				return nil
			}
			for i := 0; i < cfg.Rounds; i++ {
				m, err := w.Recv(ctx, 0, i)
				if err != nil {
					return err
				}
				if err := w.Send(ctx, 0, i, m.Data); err != nil {
					return err
				}
			}
			return nil
		}))

	if err := mpirun.Run(ctx, tb.Sites[0].Proxy, core.LaunchSpec{
		Owner:   "admin",
		Program: "pingpong",
		Procs:   2,
	}); err != nil {
		return E1Row{}, err
	}
	rtt := <-rttCh
	bytesPerRound := float64(2 * msgBytes) // there and back
	throughput := bytesPerRound / rtt.Seconds() / (1 << 20)
	return E1Row{
		Mode:          mode,
		MsgBytes:      msgBytes,
		Rounds:        cfg.Rounds,
		RTT:           rtt,
		ThroughputMBs: throughput,
		TunnelBytes:   reg.Counter(metrics.BytesTunneled).Value(),
	}, nil
}

// E1Table renders E1 rows.
func E1Table(rows []E1Row) Table {
	t := Table{
		Title:  "E1 — MPI via proxy multiplexing (paper Fig. 3a vs 3b)",
		Claim:  "MPI runs unmodified across sites; only inter-site traffic crosses the tunnel",
		Header: []string{"mode", "msg_bytes", "rounds", "rtt", "MB/s", "tunnel_bytes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode, itoa(r.MsgBytes), itoa(r.Rounds), dur(r.RTT), f2(r.ThroughputMBs), i64(r.TunnelBytes),
		})
	}
	return t
}
