package experiments

import (
	"fmt"

	"gridproxy/internal/balance"
	"gridproxy/internal/sim"
)

// E3Row is one (policy, node heterogeneity) scheduling measurement.
type E3Row struct {
	Policy        string
	Skew          float64 // max/min node speed
	Tasks         int
	Nodes         int
	Makespan      float64
	AvgCompletion float64
	Utilization   float64
	// SpeedupVsRR is the round-robin makespan divided by this policy's
	// (1.0 for round-robin itself).
	SpeedupVsRR float64
}

// E3Config parameterizes experiment E3.
type E3Config struct {
	Sites        int
	NodesPerSite int
	Tasks        int
	// TaskSkew spreads task work uniformly in [1, TaskSkew].
	TaskSkew float64
	// NodeSkews are the heterogeneity levels to sweep.
	NodeSkews []float64
	Policies  []string
	Seed      int64
}

// DefaultE3 returns the parameters used in EXPERIMENTS.md.
func DefaultE3() E3Config {
	return E3Config{
		Sites:        4,
		NodesPerSite: 8,
		Tasks:        512,
		TaskSkew:     4,
		NodeSkews:    []float64{1, 2, 4, 8},
		Policies:     []string{"round-robin", "random", "weighted-speed", "least-loaded"},
		Seed:         11,
	}
}

// E3 sweeps placement policies against node heterogeneity. The paper:
// "In its original form, the MPI uses the round-robin method to
// distribute the processes among the nodes" and proposes proxy-side load
// balancing to "ensure the best possible use and optimization of the
// available resources". Expected shape: load-aware policies beat
// round-robin, and the gap widens with heterogeneity.
func E3(cfg E3Config) ([]E3Row, error) {
	var rows []E3Row
	for _, skew := range cfg.NodeSkews {
		nodes := sim.HeterogeneousNodes(cfg.Sites, cfg.NodesPerSite, skew, cfg.Seed)
		tasks := sim.SkewedTasks(cfg.Tasks, cfg.Seed+1, 1, cfg.TaskSkew)
		rrMakespan := 0.0
		for _, policyName := range cfg.Policies {
			policy, err := balance.New(policyName, cfg.Seed)
			if err != nil {
				return nil, err
			}
			result, err := sim.Simulate(nodes, tasks, policy)
			if err != nil {
				return nil, fmt.Errorf("e3 %s skew %.0f: %w", policyName, skew, err)
			}
			if policyName == "round-robin" {
				rrMakespan = result.Makespan
			}
			row := E3Row{
				Policy:        policyName,
				Skew:          skew,
				Tasks:         cfg.Tasks,
				Nodes:         len(nodes),
				Makespan:      result.Makespan,
				AvgCompletion: result.AvgCompletion,
				Utilization:   result.Utilization(),
			}
			if rrMakespan > 0 && result.Makespan > 0 {
				row.SpeedupVsRR = rrMakespan / result.Makespan
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// E3Table renders E3 rows.
func E3Table(rows []E3Row) Table {
	t := Table{
		Title:  "E3 — placement policy vs node heterogeneity (makespan)",
		Claim:  "proxy load balancing beats MPI's default round-robin; gap widens with heterogeneity",
		Header: []string{"policy", "node_skew", "tasks", "nodes", "makespan", "avg_completion", "util", "speedup_vs_rr"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy, f1(r.Skew), itoa(r.Tasks), itoa(r.Nodes),
			f2(r.Makespan), f2(r.AvgCompletion), f2(r.Utilization), f2(r.SpeedupVsRR),
		})
	}
	return t
}
