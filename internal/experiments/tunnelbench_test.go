package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchFileArtifact schema-checks the committed BENCH_tunnel.json:
// all three labeled runs present, every benchmark in each, values sane,
// and the recorded runs actually clearing the data-path acceptance bars —
// "after" at >=2x throughput and >=75% fewer allocations than "before",
// and the v2 "bonded-k4" capture at >=1.5x "after" with zero allocations
// per frame.
func TestBenchFileArtifact(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_tunnel.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read committed artifact: %v", err)
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if file.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", file.Schema, BenchSchema)
	}

	runs := map[string]BenchRun{}
	for _, run := range file.Runs {
		runs[run.Label] = run
	}
	for _, label := range []string{"before", "after", "bonded-k4"} {
		run, ok := runs[label]
		if !ok {
			t.Fatalf("missing run %q", label)
		}
		byName := map[string]BenchResult{}
		for _, res := range run.Results {
			byName[res.Name] = res
		}
		for _, bench := range tunnelBenchmarks {
			res, ok := byName[bench.name]
			if !ok {
				t.Fatalf("run %q missing benchmark %q", label, bench.name)
			}
			if res.MBPerS <= 0 || res.NsPerOp <= 0 {
				t.Fatalf("run %q %s: non-positive numbers: %+v", label, bench.name, res)
			}
			if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
				t.Fatalf("run %q %s: negative alloc stats: %+v", label, bench.name, res)
			}
		}
	}

	// The headline acceptance bars, asserted against the committed file so
	// a regressed re-capture fails CI rather than silently shipping.
	find := func(label, name string) BenchResult {
		for _, res := range runs[label].Results {
			if res.Name == name {
				return res
			}
		}
		t.Fatalf("run %q missing %q", label, name)
		return BenchResult{}
	}
	before := find("before", "TunnelThroughput")
	after := find("after", "TunnelThroughput")
	if after.MBPerS < 2*before.MBPerS {
		t.Errorf("TunnelThroughput after = %.2f MB/s, want >= 2x before (%.2f MB/s)",
			after.MBPerS, before.MBPerS)
	}
	if after.AllocsPerOp > before.AllocsPerOp/4 {
		t.Errorf("TunnelThroughput after = %d allocs/op, want <= 25%% of before (%d)",
			after.AllocsPerOp, before.AllocsPerOp)
	}

	// The bonding bar: k=4 on the same shaped WAN must beat the k=1
	// capture by >=1.5x without giving back the zero-allocation frame
	// path. BondConns is what makes the capture self-describing.
	bonded := find("bonded-k4", "TunnelThroughput")
	if got := runs["bonded-k4"].BondConns; got != 4 {
		t.Errorf("bonded-k4 run records bond_conns = %d, want 4", got)
	}
	if bonded.MBPerS < 1.5*after.MBPerS {
		t.Errorf("TunnelThroughput bonded-k4 = %.2f MB/s, want >= 1.5x after (%.2f MB/s)",
			bonded.MBPerS, after.MBPerS)
	}
	if bonded.AllocsPerOp != 0 {
		t.Errorf("TunnelThroughput bonded-k4 = %d allocs/op, want 0", bonded.AllocsPerOp)
	}
}

// TestMergeBenchRun covers the artifact merge rules: append new labels,
// replace an existing one in place, and reject foreign schemas on load.
func TestMergeBenchRun(t *testing.T) {
	file := &BenchFile{Schema: BenchSchema}
	mergeBenchRun(file, BenchRun{Label: "before", Results: []BenchResult{{Name: "x", MBPerS: 1}}})
	mergeBenchRun(file, BenchRun{Label: "after", Results: []BenchResult{{Name: "x", MBPerS: 2}}})
	if len(file.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(file.Runs))
	}
	mergeBenchRun(file, BenchRun{Label: "after", Results: []BenchResult{{Name: "x", MBPerS: 3}}})
	if len(file.Runs) != 2 {
		t.Fatalf("replacing a label grew runs to %d", len(file.Runs))
	}
	if file.Runs[0].Label != "before" || file.Runs[1].Results[0].MBPerS != 3 {
		t.Fatalf("replace did not keep order / update in place: %+v", file.Runs)
	}
}

// TestLoadBenchFile covers the load paths the CLI depends on: a fresh
// file when the artifact is absent, round-tripping an existing one, and
// rejecting a schema mismatch.
func TestLoadBenchFile(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "absent.json")
	file, err := loadBenchFile(missing)
	if err != nil {
		t.Fatalf("load absent: %v", err)
	}
	if file.Schema != BenchSchema || len(file.Runs) != 0 {
		t.Fatalf("fresh file = %+v", file)
	}

	good := filepath.Join(dir, "good.json")
	payload, _ := json.Marshal(BenchFile{Schema: BenchSchema, Runs: []BenchRun{{Label: "before"}}})
	if err := os.WriteFile(good, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	file, err = loadBenchFile(good)
	if err != nil {
		t.Fatalf("load existing: %v", err)
	}
	if len(file.Runs) != 1 || file.Runs[0].Label != "before" {
		t.Fatalf("round trip = %+v", file)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchFile(bad); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
