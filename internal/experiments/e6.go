package experiments

import (
	"gridproxy/internal/baseline"
)

// E6Row is one (architecture, grid shape) deployment-footprint row.
type E6Row struct {
	Arch         string
	Sites        int
	NodesPerSite int
	Footprint    baseline.DeploymentFootprint
}

// E6Config parameterizes experiment E6.
type E6Config struct {
	Shapes [][2]int
}

// DefaultE6 returns the parameters used in EXPERIMENTS.md.
func DefaultE6() E6Config {
	return E6Config{Shapes: [][2]int{{2, 8}, {4, 16}, {8, 32}, {16, 64}}}
}

// E6 quantifies the paper's deployability claim: "The strong points of
// the architecture are its transparency, simple use and low interference
// in the installed base" and "apart from the MPI and the introduction of
// a proxy server at the sites, the installation of an additional module
// at the client is unnecessary". The proxy architecture installs one
// module and one certificate per site; the per-node baseline needs one of
// each on every node.
func E6(cfg E6Config) []E6Row {
	var rows []E6Row
	for _, shape := range cfg.Shapes {
		sites, nodes := shape[0], shape[1]
		rows = append(rows,
			E6Row{Arch: "proxy", Sites: sites, NodesPerSite: nodes,
				Footprint: baseline.ProxyFootprint(sites, nodes)},
			E6Row{Arch: "per-node", Sites: sites, NodesPerSite: nodes,
				Footprint: baseline.BaselineFootprint(sites, nodes)},
		)
	}
	return rows
}

// E6Table renders E6 rows.
func E6Table(rows []E6Row) Table {
	t := Table{
		Title:  "E6 — deployment footprint (installed modules, certificates, config touchpoints)",
		Claim:  "low interference in the installed base: grid software only at site borders",
		Header: []string{"arch", "sites", "nodes/site", "modules", "certs", "config_touchpoints"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Arch, itoa(r.Sites), itoa(r.NodesPerSite),
			itoa(r.Footprint.ModulesInstalled),
			itoa(r.Footprint.CertificatesIssued),
			itoa(r.Footprint.ConfigTouchpoints),
		})
	}
	return t
}
