package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/failure"
	"gridproxy/internal/gate"
	"gridproxy/internal/metrics"
	"gridproxy/internal/site"
)

// E13 is the gateway load-shedding acceptance run: one gridgate gateway
// fronting a small real grid (real proxies, nodes, tickets, wire
// protocol — only the HTTP transport is simulated by driving ServeHTTP
// in-process) takes ≥100k simulated clients at 1×, 4×, and 16× its
// admission capacity. The run FAILS — an error, not a table row —
// unless the gateway meets the bars:
//
//  1. every request is answered and accounted: served + shed == offered
//     in every phase, with zero transport/handler errors;
//  2. at 1× capacity nothing is shed — admission control must be
//     invisible until there is something to shed;
//  3. at 16× overload the p99 of ADMITTED requests stays within budget
//     (bounded queueing: the queue is short and timed, so accepted work
//     is fast work) while shed requests fail in <10ms with 429 +
//     Retry-After — overload answers in microseconds, not after a
//     queueing delay;
//  4. graceful drain drops nothing: uploads parked mid-body by a
//     slow-loris injector all complete with 201 while new arrivals get
//     503, and Drain returns clean.

// E13Config parameterizes experiment E13.
type E13Config struct {
	// Capacity is the gateway's MaxInFlight (MaxQueue matches it).
	Capacity int
	// QueueWait bounds how long a queued request may wait for a slot.
	QueueWait time.Duration
	// LANLatency shapes the site-local network so every gate→proxy RPC
	// has a realistic service time. Without it the in-memory pipes are
	// effectively infinitely fast: slots recycle in microseconds, no
	// finite herd can fill the queue, and the experiment would measure
	// the Go scheduler instead of admission control.
	LANLatency time.Duration
	// Clients is the offered load per multiplier phase (total simulated
	// clients = Clients × len(Multipliers)).
	Clients int
	// Users is how many distinct authenticated sessions drive the load.
	Users int
	// Multipliers are the offered-concurrency factors over Capacity.
	Multipliers []int
	// AdmittedP99Budget bounds the p99 latency of served requests at the
	// highest multiplier.
	AdmittedP99Budget time.Duration
	// ShedP99Budget bounds the p99 latency of shed (429) requests.
	ShedP99Budget time.Duration
	// DrainUploads is how many in-flight uploads the drain phase parks.
	DrainUploads int
}

// DefaultE13 returns the acceptance-run parameters: 102k clients
// against a 64-slot gateway over a 2-site grid.
func DefaultE13() E13Config {
	return E13Config{
		Capacity:          64,
		QueueWait:         200 * time.Millisecond,
		LANLatency:        time.Millisecond,
		Clients:           34_000,
		Users:             64,
		Multipliers:       []int{1, 4, 16},
		AdmittedP99Budget: 500 * time.Millisecond,
		ShedP99Budget:     10 * time.Millisecond,
		DrainUploads:      32,
	}
}

// E13Row is one load phase.
type E13Row struct {
	Multiplier int
	Offered    int
	Served     int
	Queued     int64 // served requests that waited in the accept queue
	Shed       int
	Errors     int
	P50        time.Duration // served-request latency
	P99        time.Duration
	ShedP99    time.Duration
}

// E13 stands the gateway up, runs the multiplier sweep, then the drain
// phase, enforcing every bar.
func E13(cfg E13Config) ([]E13Row, error) {
	users, err := auth.NewStore()
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Users; i++ {
		name := fmt.Sprintf("u%03d", i)
		if err := users.AddUser(name, "pw"); err != nil {
			return nil, err
		}
		if err := users.GrantUser(name, auth.Permission{Action: "*", Resource: "*"}); err != nil {
			return nil, err
		}
	}
	reg := metrics.NewRegistry()
	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName:   "e13",
		Users:      users,
		Metrics:    reg,
		LANLatency: cfg.LANLatency,
		Sites: []site.SiteSpec{
			{Name: "sitea", Nodes: site.UniformNodes(2, 1)},
			{Name: "siteb", Nodes: site.UniformNodes(2, 1)},
		},
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		return nil, err
	}
	gw, err := gate.New(gate.Config{
		Site:      "sitea",
		ProxyAddr: tb.Sites[0].LocalAddr(),
		Network:   tb.Sites[0].Local,
		TGS:       tb.TGS,
		Metrics:   reg,
		Admission: gate.AdmissionConfig{
			MaxInFlight: cfg.Capacity,
			MaxQueue:    cfg.Capacity,
			QueueWait:   cfg.QueueWait,
		},
		// The experiment measures admission control; per-user fairness
		// (rate limits, job quotas) is off so the accounting below has
		// exactly one refusal source.
		Limits: gate.LimitConfig{
			UserRate: -1, GroupRate: -1, LoginRate: -1, MaxJobsPerUser: -1,
		},
		Pool: gate.PoolConfig{MaxClients: cfg.Users},
	})
	if err != nil {
		return nil, err
	}

	// One sign-on per user — the sessions the simulated clients share.
	tokens := make([]string, cfg.Users)
	for i := range tokens {
		body := fmt.Sprintf(`{"user":"u%03d","password":"pw"}`, i)
		rr := httptest.NewRecorder()
		gw.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/login", strings.NewReader(body)))
		if rr.Code != http.StatusOK {
			return nil, fmt.Errorf("e13: login u%03d = %d: %s", i, rr.Code, rr.Body)
		}
		tok := rr.Body.String()
		const marker = `"token":"`
		start := strings.Index(tok, marker)
		end := strings.Index(tok[start+len(marker):], `"`)
		if start < 0 || end < 0 {
			return nil, fmt.Errorf("e13: login reply without token: %s", tok)
		}
		tokens[i] = tok[start+len(marker) : start+len(marker)+end]
	}

	var rows []E13Row
	for _, m := range cfg.Multipliers {
		row, err := e13Phase(gw, reg, tokens, cfg, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}

	// Bars over the sweep.
	for _, r := range rows {
		if r.Errors != 0 {
			return nil, fmt.Errorf("e13: %d errored requests at %dx", r.Errors, r.Multiplier)
		}
		if r.Served+r.Shed != r.Offered {
			return nil, fmt.Errorf("e13: accounting hole at %dx: served %d + shed %d != offered %d",
				r.Multiplier, r.Served, r.Shed, r.Offered)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Multiplier == 1 && first.Shed != 0 {
		return nil, fmt.Errorf("e13: %d requests shed at 1x capacity — admission control must be invisible unloaded", first.Shed)
	}
	if last.Multiplier > 1 {
		if last.Shed == 0 {
			return nil, fmt.Errorf("e13: nothing shed at %dx overload — the experiment exercised no admission control", last.Multiplier)
		}
		if last.P99 > cfg.AdmittedP99Budget {
			return nil, fmt.Errorf("e13: admitted p99 %v at %dx exceeds budget %v",
				last.P99, last.Multiplier, cfg.AdmittedP99Budget)
		}
		if last.ShedP99 > cfg.ShedP99Budget {
			return nil, fmt.Errorf("e13: shed p99 %v at %dx exceeds fast-fail budget %v",
				last.ShedP99, last.Multiplier, cfg.ShedP99Budget)
		}
	}

	if err := e13Drain(gw, reg, tokens[0], cfg.DrainUploads); err != nil {
		return nil, err
	}
	return rows, nil
}

// e13Phase offers ~cfg.Clients requests at multiplier×Capacity
// concurrency and collects the outcome split and latency percentiles.
// The load arrives in synchronized waves — `concurrency` clients firing
// at the same instant, repeated until the phase budget is spent — the
// thundering-herd arrival pattern admission control exists for. A
// free-running open loop would let the scheduler drain sub-millisecond
// requests faster than it starts them and never fill the queue.
func e13Phase(gw *gate.Gateway, reg *metrics.Registry, tokens []string, cfg E13Config, multiplier int) (*E13Row, error) {
	concurrency := multiplier * cfg.Capacity
	waves := cfg.Clients / concurrency
	if waves < 1 {
		waves = 1
	}
	queuedBefore := reg.Counter(metrics.GateQueued).Value()

	type outcome struct {
		served, shed, errors int
		servedLat, shedLat   []time.Duration
	}
	outcomes := make([]outcome, concurrency)
	for wave := 0; wave < waves; wave++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				o := &outcomes[w]
				req := httptest.NewRequest(http.MethodGet, "/api/jobs", nil)
				req.Header.Set("Authorization", "Bearer "+tokens[w%len(tokens)])
				rr := httptest.NewRecorder()
				<-start
				began := time.Now()
				gw.ServeHTTP(rr, req)
				lat := time.Since(began)
				switch {
				case rr.Code == http.StatusOK:
					o.served++
					o.servedLat = append(o.servedLat, lat)
				case rr.Code == http.StatusTooManyRequests && rr.Header().Get("Retry-After") != "":
					o.shed++
					o.shedLat = append(o.shedLat, lat)
				default:
					o.errors++
				}
			}(w)
		}
		close(start)
		wg.Wait()
	}

	row := &E13Row{Multiplier: multiplier, Offered: waves * concurrency}
	var servedLat, shedLat []time.Duration
	for i := range outcomes {
		row.Served += outcomes[i].served
		row.Shed += outcomes[i].shed
		row.Errors += outcomes[i].errors
		servedLat = append(servedLat, outcomes[i].servedLat...)
		shedLat = append(shedLat, outcomes[i].shedLat...)
	}
	row.Queued = reg.Counter(metrics.GateQueued).Value() - queuedBefore
	row.P50 = percentile(servedLat, 50)
	row.P99 = percentile(servedLat, 99)
	row.ShedP99 = percentile(shedLat, 99)
	return row, nil
}

// e13Drain parks uploads mid-body with a slow-loris injector, drains the
// gateway, and requires every admitted upload to complete — the
// zero-dropped-in-flight bar for SIGTERM handling.
func e13Drain(gw *gate.Gateway, reg *metrics.Registry, token string, uploads int) error {
	loris := &failure.SlowLoris{Chunk: 16}
	loris.Stall()
	codes := make(chan int, uploads)
	for i := 0; i < uploads; i++ {
		go func(i int) {
			payload := fmt.Sprintf("e13 drain upload %d", i)
			req := httptest.NewRequest(http.MethodPost,
				fmt.Sprintf("/api/files?name=drain%d", i), loris.Body([]byte(payload)))
			req.Header.Set("Authorization", "Bearer "+token)
			rr := httptest.NewRecorder()
			gw.ServeHTTP(rr, req)
			codes <- rr.Code
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for gw.InFlight() < int64(uploads) {
		if time.Now().After(deadline) {
			return fmt.Errorf("e13: only %d/%d uploads in flight before drain", gw.InFlight(), uploads)
		}
		time.Sleep(time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- gw.Drain(drainCtx) }()

	// New arrivals must be refused while the uploads are still parked.
	refused := false
	for time.Now().Before(deadline) {
		req := httptest.NewRequest(http.MethodGet, "/api/jobs", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		rr := httptest.NewRecorder()
		gw.ServeHTTP(rr, req)
		if rr.Code == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !refused {
		return fmt.Errorf("e13: draining gateway still accepting new requests")
	}

	loris.Heal()
	dropped := 0
	for i := 0; i < uploads; i++ {
		if code := <-codes; code != http.StatusCreated {
			dropped++
		}
	}
	if err := <-drainDone; err != nil {
		return fmt.Errorf("e13: drain did not complete: %w", err)
	}
	if dropped != 0 {
		return fmt.Errorf("e13: drain dropped %d of %d in-flight uploads", dropped, uploads)
	}
	return nil
}

// percentile returns the p-th percentile of lats (nearest-rank); zero
// for an empty set.
func percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (len(lats)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return lats[idx]
}

// E13Table renders the sweep for EXPERIMENTS.md.
func E13Table(rows []E13Row) Table {
	t := Table{
		Title:  "E13: gateway admission control — served/queued/shed under overload",
		Claim:  "at 16x admission capacity the gateway bounds admitted-request p99, sheds the excess in <10ms with 429+Retry-After, and accounts for every offered request",
		Header: []string{"load", "offered", "served", "queued", "shed", "errors", "p50", "p99", "shed-p99"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", r.Multiplier),
			itoa(r.Offered),
			itoa(r.Served),
			i64(r.Queued),
			itoa(r.Shed),
			itoa(r.Errors),
			dur(r.P50),
			dur(r.P99),
			dur(r.ShedP99),
		})
	}
	return t
}
