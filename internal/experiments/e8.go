package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gridproxy/internal/ca"
	"gridproxy/internal/metrics"
	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
)

// E8Row is one (scheme, concurrency) tunnel-multiplexing measurement.
type E8Row struct {
	Scheme        string // "multiplexed" or "conn-per-stream"
	Streams       int
	BytesEach     int
	Handshakes    int64
	Duration      time.Duration
	ThroughputMBs float64
}

// E8Config parameterizes experiment E8.
type E8Config struct {
	StreamCounts []int
	BytesEach    int
}

// DefaultE8 returns the parameters used in EXPERIMENTS.md.
func DefaultE8() E8Config {
	return E8Config{StreamCounts: []int{1, 8, 32, 128}, BytesEach: 64 << 10}
}

// E8 compares the proxy's stream multiplexing — all inter-site traffic
// sharing ONE TLS connection per peer ("the proxy acts as a multiplexer
// of the communication") — against opening a TLS connection per
// application stream. Expected shape: the multiplexed tunnel performs a
// constant number of handshakes regardless of concurrency, while
// connection-per-stream handshakes scale linearly.
func E8(cfg E8Config) ([]E8Row, error) {
	var rows []E8Row
	for _, streams := range cfg.StreamCounts {
		mux, err := runE8Mux(streams, cfg.BytesEach)
		if err != nil {
			return nil, fmt.Errorf("e8 mux %d: %w", streams, err)
		}
		rows = append(rows, mux)
		per, err := runE8PerConn(streams, cfg.BytesEach)
		if err != nil {
			return nil, fmt.Errorf("e8 per-conn %d: %w", streams, err)
		}
		rows = append(rows, per)
	}
	return rows, nil
}

// e8Env is the shared TLS plumbing for both schemes.
type e8Env struct {
	reg     *metrics.Registry
	network *transport.TLS
	peer    *transport.TLS
	mem     *transport.MemNetwork
}

func newE8Env() (*e8Env, error) {
	authority, err := ca.New("e8")
	if err != nil {
		return nil, err
	}
	credA, err := authority.IssueHost("proxy.a")
	if err != nil {
		return nil, err
	}
	credB, err := authority.IssueHost("proxy.b")
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	mem := transport.NewMemNetwork()
	pool := authority.CertPool()
	return &e8Env{
		reg:     reg,
		network: transport.NewTLS(mem, credA, pool, reg),
		peer:    transport.NewTLS(mem, credB, pool, reg),
		mem:     mem,
	}, nil
}

func payloadOf(n int) ([]byte, error) {
	p := make([]byte, n)
	if _, err := rand.Read(p); err != nil {
		return nil, err
	}
	return p, nil
}

// runE8Mux pushes N concurrent streams through one tunnel session over a
// single TLS connection.
func runE8Mux(streams, bytesEach int) (E8Row, error) {
	env, err := newE8Env()
	if err != nil {
		return E8Row{}, err
	}
	defer env.mem.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	ln, err := env.peer.Listen("peer")
	if err != nil {
		return E8Row{}, err
	}
	defer ln.Close()
	serverErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		session := tunnel.Server(conn, tunnel.Config{Metrics: env.reg, AcceptBacklog: streams + 8})
		defer session.Close()
		var wg sync.WaitGroup
		for i := 0; i < streams; i++ {
			stream, err := session.Accept(ctx)
			if err != nil {
				serverErr <- err
				return
			}
			wg.Add(1)
			go func(stream *tunnel.Stream) {
				defer wg.Done()
				_, _ = io.Copy(io.Discard, stream)
			}(stream)
		}
		wg.Wait()
		serverErr <- nil
	}()

	conn, err := env.network.Dial(ctx, "peer")
	if err != nil {
		return E8Row{}, err
	}
	session := tunnel.Client(conn, tunnel.Config{Metrics: env.reg})
	defer session.Close()

	payload, err := payloadOf(bytesEach)
	if err != nil {
		return E8Row{}, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stream, err := session.Open(ctx, nil)
			if err != nil {
				errs <- err
				return
			}
			if _, err := stream.Write(payload); err != nil {
				errs <- err
				return
			}
			errs <- stream.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return E8Row{}, err
		}
	}
	_ = session.Close()
	if err := <-serverErr; err != nil {
		return E8Row{}, err
	}
	return e8Row("multiplexed", streams, bytesEach, env, time.Since(start)), nil
}

// runE8PerConn opens one TLS connection per stream (no multiplexer).
func runE8PerConn(streams, bytesEach int) (E8Row, error) {
	env, err := newE8Env()
	if err != nil {
		return E8Row{}, err
	}
	defer env.mem.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	ln, err := env.peer.Listen("peer")
	if err != nil {
		return E8Row{}, err
	}
	defer ln.Close()
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			acceptWG.Add(1)
			go func(conn net.Conn) {
				defer acceptWG.Done()
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn)
			}(conn)
		}
	}()

	payload, err := payloadOf(bytesEach)
	if err != nil {
		return E8Row{}, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := env.network.Dial(ctx, "peer")
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.Write(payload); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return E8Row{}, err
		}
	}
	elapsed := time.Since(start)
	_ = ln.Close()
	acceptWG.Wait()
	return e8Row("conn-per-stream", streams, bytesEach, env, elapsed), nil
}

func e8Row(scheme string, streams, bytesEach int, env *e8Env, elapsed time.Duration) E8Row {
	total := float64(streams*bytesEach) / (1 << 20)
	return E8Row{
		Scheme:        scheme,
		Streams:       streams,
		BytesEach:     bytesEach,
		Handshakes:    env.reg.Counter(metrics.TLSHandshakes).Value(),
		Duration:      elapsed,
		ThroughputMBs: total / elapsed.Seconds(),
	}
}

// E8Table renders E8 rows.
func E8Table(rows []E8Row) Table {
	t := Table{
		Title:  "E8 — one multiplexed tunnel vs TLS connection per stream",
		Claim:  "the proxy multiplexes all inter-site streams over one secured connection",
		Header: []string{"scheme", "streams", "bytes_each", "handshakes", "duration", "MB/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, itoa(r.Streams), itoa(r.BytesEach), i64(r.Handshakes), dur(r.Duration), f2(r.ThroughputMBs),
		})
	}
	return t
}
