package experiments

import (
	"testing"
)

func TestE2Small(t *testing.T) {
	rows, err := E2(E2Config{
		Sites:        2,
		NodesPerSite: 2,
		Flows:        6,
		BytesPerFlow: 1024,
		IntraFracs:   []float64{0.5},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	proxyRow, baseRow := rows[0], rows[1]
	if proxyRow.CryptoBytes >= baseRow.CryptoBytes {
		t.Errorf("proxy crypto %d not below baseline %d", proxyRow.CryptoBytes, baseRow.CryptoBytes)
	}
	if proxyRow.CryptoEntities >= baseRow.CryptoEntities {
		t.Errorf("proxy entities %d vs baseline %d", proxyRow.CryptoEntities, baseRow.CryptoEntities)
	}
}
