package grid_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/core"
	"gridproxy/internal/grid"
	"gridproxy/internal/metrics"
	"gridproxy/internal/mpi"
	"gridproxy/internal/mpirun"
	"gridproxy/internal/node"
	"gridproxy/internal/site"
	"gridproxy/internal/ticket"
)

type fixture struct {
	tb *site.Testbed
}

func newFixture(t *testing.T, nodesPerSite ...int) *fixture {
	t.Helper()
	users, err := auth.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := users.AddUser("alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := users.AddToGroup("alice", "researchers"); err != nil {
		t.Fatal(err)
	}
	users.GrantGroup("researchers", auth.Permission{Action: "*", Resource: "*"})

	cfg := site.TestbedConfig{GridName: "gridtest", Users: users, Metrics: metrics.NewRegistry()}
	for i, n := range nodesPerSite {
		cfg.Sites = append(cfg.Sites, site.SiteSpec{
			Name:  fmt.Sprintf("site%c", 'a'+i),
			Nodes: site.UniformNodes(n, 1),
		})
	}
	tb, err := site.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		t.Fatal(err)
	}
	return &fixture{tb: tb}
}

func (f *fixture) dial(t *testing.T, siteIdx int) *grid.Client {
	t.Helper()
	s := f.tb.Sites[siteIdx]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := grid.Dial(ctx, s.Local, s.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPasswordLoginAndStatus(t *testing.T) {
	f := newFixture(t, 2, 3)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Status before login must be refused.
	if _, err := c.Status(ctx); err == nil {
		t.Fatal("unauthenticated status accepted")
	}
	if err := c.Login(ctx, "alice", "wrong"); !errors.Is(err, grid.ErrAuthFailed) {
		t.Fatalf("wrong password: %v", err)
	}
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if c.User() != "alice" || len(c.Token()) == 0 {
		t.Error("session not established")
	}
	summaries, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("summaries = %+v", summaries)
	}
	total := 0
	for _, s := range summaries {
		total += s.Nodes
	}
	if total != 5 {
		t.Errorf("total nodes = %d", total)
	}
}

func TestMembers(t *testing.T) {
	f := newFixture(t, 1, 1, 1)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Members(ctx); err == nil {
		t.Fatal("unauthenticated members accepted")
	}
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	members, err := c.Members(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("members = %+v", members)
	}
	byName := map[string]grid.Member{}
	for _, m := range members {
		byName[m.Site] = m
		if m.State != "alive" {
			t.Errorf("%s state = %s, want alive", m.Site, m.State)
		}
		if m.Incarnation == 0 {
			t.Errorf("%s incarnation = 0", m.Site)
		}
		// Connect-time status queries seed the directory, so every row
		// should carry a summary with a sane age.
		if !m.HasSummary {
			t.Errorf("%s has no summary", m.Site)
		}
		// Nobody is in the suspicion pipeline on a healthy mesh, and the
		// last-heard age of an alive row is recent by construction.
		if m.Suspected || m.SuspectFor != 0 {
			t.Errorf("%s suspected (%v) on a healthy mesh", m.Site, m.SuspectFor)
		}
		if m.LastHeard > time.Minute {
			t.Errorf("%s last heard %v ago, want recent", m.Site, m.LastHeard)
		}
	}
	// The directory row for the proxy's own site reports a tunnel (to
	// itself); the testbed's ConnectAll holds supervised links to the
	// rest, so they count as tunnels held too.
	for _, m := range members {
		if !m.Tunnel {
			t.Errorf("%s tunnel = n, want y under full testbed mesh", m.Site)
		}
	}
	if _, ok := byName["sitea"]; !ok {
		t.Errorf("own site missing from directory: %+v", members)
	}
}

func TestSignatureLogin(t *testing.T) {
	f := newFixture(t, 1)
	// Issue alice a user certificate from the grid CA and register the
	// public key.
	cred, err := f.tb.CA.IssueUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.tb.Users.SetPublicKey("alice", &cred.Key.PublicKey); err != nil {
		t.Fatal(err)
	}
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.LoginWithSignature(ctx, "alice", cred.Key); err != nil {
		t.Fatalf("signature login: %v", err)
	}
	if _, err := c.Status(ctx); err != nil {
		t.Errorf("status after signature login: %v", err)
	}
}

func TestTicketSingleSignOn(t *testing.T) {
	f := newFixture(t, 1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Single expensive sign-on at the TGS.
	tgt, err := f.tb.TGS.SignOnPassword("alice", "secret")
	if err != nil {
		t.Fatal(err)
	}
	// Use a client at sitea to mint a ticket for siteb's proxy, then
	// log into siteb with the ticket alone (no password).
	ca := f.dial(t, 0)
	ticketB, err := ca.RequestTicket(ctx, tgt, core.ServiceName("siteb"))
	if err != nil {
		t.Fatal(err)
	}
	cb := f.dial(t, 1)
	if err := cb.LoginWithTicket(ctx, "alice", ticketB); err != nil {
		t.Fatalf("ticket login: %v", err)
	}
	if _, err := cb.Status(ctx); err != nil {
		t.Errorf("status after ticket login: %v", err)
	}
	// A ticket for siteb must not work at sitea.
	ca2 := f.dial(t, 0)
	if err := ca2.LoginWithTicket(ctx, "alice", ticketB); err == nil {
		t.Error("siteb ticket accepted at sitea")
	}
	_ = ticket.DefaultTicketLifetime // keep import for doc clarity
}

func TestSubmitAndWaitMPIJob(t *testing.T) {
	f := newFixture(t, 2, 2)
	f.tb.RegisterProgram("allsum", mpirun.Program(
		func(ctx context.Context, w *mpi.World, env node.Env) error {
			out, err := w.Allreduce(ctx, mpi.OpSum, []float64{1})
			if err != nil {
				return err
			}
			if out[0] != float64(w.Size()) {
				return fmt.Errorf("sum = %v", out[0])
			}
			return nil
		}))
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	jobID, err := c.SubmitMPI(ctx, "allsum", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitJob(ctx, jobID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
}

func TestSubmitRequiresAuth(t *testing.T) {
	f := newFixture(t, 1)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.SubmitMPI(ctx, "x", nil, 1); !errors.Is(err, grid.ErrNotAuthenticated) {
		t.Errorf("unauthenticated submit = %v", err)
	}
}

func TestCancelJobAndList(t *testing.T) {
	f := newFixture(t, 2)
	f.tb.RegisterProgram("forever", func(ctx context.Context, env node.Env) error {
		<-ctx.Done()
		return ctx.Err()
	})
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	jobID, err := c.SubmitMPI(ctx, "forever", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, jobID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := c.WaitJob(ctx, jobID); !errors.Is(err, grid.ErrJobCanceled) {
		t.Fatalf("WaitJob after cancel = %v, want ErrJobCanceled", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range jobs {
		if j.ID == jobID {
			found = true
			if j.State != "cancelled" {
				t.Errorf("job state = %q, want cancelled", j.State)
			}
		}
	}
	if !found {
		t.Errorf("cancelled job %q missing from listing %v", jobID, jobs)
	}
	// Cancelling an unknown job is refused.
	if err := c.Cancel(ctx, "no-such-job"); err == nil {
		t.Error("cancel of unknown job accepted")
	}
}

func TestFailingJobReported(t *testing.T) {
	f := newFixture(t, 2)
	f.tb.RegisterProgram("crash", mpirun.Program(
		func(ctx context.Context, w *mpi.World, env node.Env) error {
			return errors.New("segfault, probably")
		}))
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	jobID, err := c.SubmitMPI(ctx, "crash", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.WaitJob(ctx, jobID)
	if !errors.Is(err, grid.ErrJobFailed) {
		t.Fatalf("WaitJob = %v, want ErrJobFailed", err)
	}
	if !strings.Contains(err.Error(), "segfault") {
		t.Errorf("failure detail lost: %v", err)
	}
}

func TestResourcesQuery(t *testing.T) {
	f := newFixture(t, 3)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	resources, err := c.Resources(ctx, "node", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 3 {
		t.Errorf("resources = %+v", resources)
	}
}

func TestPing(t *testing.T) {
	f := newFixture(t, 1)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSecureTunnelEndToEnd(t *testing.T) {
	f := newFixture(t, 1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// An echo service listening inside siteb, NOT part of the grid.
	sb := f.tb.Sites[1]
	ln, err := sb.Local.Listen("legacy-echo")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						if _, werr := conn.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	// Register the tunnel app at the destination proxy (the explicit
	// secure-channel call).
	if err := sb.Proxy.RegisterTunnelApp("alice", "tunnel-1"); err != nil {
		t.Fatal(err)
	}

	// Client at sitea authenticates, then tunnels to siteb's echo.
	c := f.dial(t, 0)
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	sa := f.tb.Sites[0]
	conn, err := c.Tunnel(ctx, core.SpliceAddr(sa.LocalAddr()), "tunnel-1", "siteb", "legacy-echo")
	if err != nil {
		t.Fatalf("Tunnel: %v", err)
	}
	defer conn.Close()
	msg := []byte("hello through two proxies and one TLS tunnel")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("echo = %q", got)
	}
}

func TestTunnelDeniedWithoutPermission(t *testing.T) {
	users, err := auth.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := users.AddUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	// bob can check status but not tunnel.
	if err := users.GrantUser("bob", auth.Permission{Action: "status", Resource: "*"}); err != nil {
		t.Fatal(err)
	}
	tb, err := site.NewTestbed(site.TestbedConfig{
		Sites: []site.SiteSpec{
			{Name: "sitea", Nodes: site.UniformNodes(1, 1)},
			{Name: "siteb", Nodes: site.UniformNodes(1, 1)},
		},
		Users: users,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		t.Fatal(err)
	}
	sa := tb.Sites[0]
	c, err := grid.Dial(ctx, sa.Local, sa.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login(ctx, "bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tunnel(ctx, core.SpliceAddr(sa.LocalAddr()), "app", "siteb", "x"); err == nil {
		t.Error("tunnel without permission succeeded")
	}
}

func TestStagePutGetStat(t *testing.T) {
	f := newFixture(t, 1)
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Put(ctx, "x", []byte("data")); !errors.Is(err, grid.ErrNotAuthenticated) {
		t.Errorf("unauthenticated put = %v", err)
	}
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	blob := []byte(strings.Repeat("grid data plane ", 1024))
	ref, err := c.Put(ctx, "payload.bin", blob)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name != "payload.bin" || ref.Size != int64(len(blob)) || ref.Hash == "" {
		t.Fatalf("ref = %+v", ref)
	}
	// Same content, different name: same hash (dedupe).
	ref2, err := c.Put(ctx, "copy.bin", blob)
	if err != nil {
		t.Fatal(err)
	}
	if ref2.Hash != ref.Hash {
		t.Errorf("dedupe: hash %s != %s", ref2.Hash, ref.Hash)
	}
	size, ok, err := c.Stat(ctx, ref.Hash)
	if err != nil || !ok || size != int64(len(blob)) {
		t.Fatalf("stat = (%d, %v, %v)", size, ok, err)
	}
	back, err := c.Get(ctx, ref.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(blob) {
		t.Fatal("get returned different content")
	}
	if _, _, err := c.Stat(ctx, strings.Repeat("0", 64)); err != nil {
		t.Fatalf("stat of absent blob should not error: %v", err)
	}
	if _, err := c.Get(ctx, strings.Repeat("0", 64)); err == nil {
		t.Fatal("get of absent blob succeeded")
	}
}

func TestSubmitStagedJobEndToEnd(t *testing.T) {
	f := newFixture(t, 1, 1)
	f.tb.RegisterProgram("transform", func(ctx context.Context, env node.Env) error {
		in, ok := env.StagedInput("input.txt")
		if !ok {
			return fmt.Errorf("rank %d: no staged input", env.Rank)
		}
		out := strings.ToUpper(string(in))
		return env.PublishOutput(fmt.Sprintf("upper-%d.txt", env.Rank), []byte(out))
	})
	c := f.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Put(ctx, "input.txt", []byte("staged across sites"))
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := c.SubmitJob(ctx, grid.JobSpec{
		Program: "transform",
		Procs:   2,
		StageIn: []grid.FileRef{ref},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitJob(ctx, jobID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	outputs, err := c.JobOutputs(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 2 {
		t.Fatalf("outputs = %+v, want 2", outputs)
	}
	for _, out := range outputs {
		data, err := c.Get(ctx, out.Hash)
		if err != nil {
			t.Fatalf("get output %q: %v", out.Name, err)
		}
		if string(data) != "STAGED ACROSS SITES" {
			t.Errorf("output %q = %q", out.Name, data)
		}
	}
}
