// Package grid is the user-facing client API of the grid (the paper's
// "Web Access Interface / Command line" layer sits on top of it). A
// Client connects to its site proxy over the site-local network and can:
//
//   - authenticate (userid/password, digital signature, or session
//     ticket),
//   - query compiled grid status ("the state of a station: availability
//     of RAM memory, CPU and HD"),
//   - submit MPI jobs and track them,
//   - request Kerberos-style tickets for other sites' proxies,
//   - open explicitly-secured tunnels to endpoints in remote sites.
//
// No grid software beyond this library is required on client machines,
// matching the paper's "installation of an additional module at the
// client is unnecessary".
package grid

import (
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/membership"
	"gridproxy/internal/monitor"
	"gridproxy/internal/proto"
	"gridproxy/internal/registry"
	"gridproxy/internal/transport"
	"gridproxy/internal/wire"
)

// Package errors.
var (
	// ErrAuthFailed is returned when the proxy rejects credentials.
	ErrAuthFailed = errors.New("grid: authentication failed")
	// ErrNotAuthenticated is returned for calls requiring a session.
	ErrNotAuthenticated = errors.New("grid: not authenticated")
	// ErrJobFailed is returned by WaitJob for failed jobs.
	ErrJobFailed = errors.New("grid: job failed")
	// ErrJobCanceled is returned by WaitJob for operator-cancelled jobs,
	// so callers can tell cancellation from failure.
	ErrJobCanceled = errors.New("grid: job canceled")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("grid: client closed")
	// ErrTicketExpired is matched (via errors.Is) by remote errors whose
	// status is StatusAuthExpired: the session's ticket or token lifetime
	// lapsed mid-session. Callers can re-authenticate and retry; see
	// OnAuthExpired for the transparent version.
	ErrTicketExpired = errors.New("grid: session ticket expired")
)

// RemoteError is a proxy-side failure carried back over the wire, with
// its machine-readable status class preserved so callers (the HTTP
// gateway in particular) can map it faithfully instead of string-parsing.
type RemoteError struct {
	Status uint16
	Text   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("grid: remote error (status %d): %s", e.Status, e.Text)
}

// Is makes errors.Is(err, ErrTicketExpired) true for auth-expiry remote
// errors.
func (e *RemoteError) Is(target error) bool {
	return target == ErrTicketExpired && e.Status == proto.StatusAuthExpired
}

// Client is a connection to a site proxy's client service.
type Client struct {
	network   transport.Network
	proxyAddr string

	conn net.Conn
	w    *wire.Writer

	nextCorr atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan proto.Message
	closed  bool

	user  string
	token []byte
	renew func(ctx context.Context) error

	readerDone chan struct{}
}

// Dial connects to the proxy's client address on the given (site-local)
// network.
func Dial(ctx context.Context, network transport.Network, proxyAddr string) (*Client, error) {
	conn, err := network.Dial(ctx, proxyAddr)
	if err != nil {
		return nil, fmt.Errorf("grid: dial proxy %s: %w", proxyAddr, err)
	}
	c := &Client{
		network:    network,
		proxyAddr:  proxyAddr,
		conn:       conn,
		w:          wire.NewWriter(conn),
		pending:    make(map[uint64]chan proto.Message),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	r := wire.NewReader(c.conn)
	for {
		msg, err := proto.ReadMessage(r)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for corr, ch := range c.pending {
				close(ch)
				delete(c.pending, corr)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.Corr]
		if ok {
			delete(c.pending, msg.Corr)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// call sends a request and waits for its typed reply. When the session
// has expired mid-connection and a renewal hook is registered, the hook
// runs once and the request is retried once — transparent recovery for
// long-lived pooled clients whose tickets outlive their usefulness.
func (c *Client) call(ctx context.Context, body proto.Body) (proto.Body, error) {
	reply, err := c.callOnce(ctx, body)
	if err == nil || !errors.Is(err, ErrTicketExpired) {
		return reply, err
	}
	c.mu.Lock()
	renew := c.renew
	c.mu.Unlock()
	if renew == nil {
		return reply, err
	}
	if _, isAuth := body.(*proto.AuthRequest); isAuth {
		// Never re-enter renewal from the renewal's own auth exchange.
		return reply, err
	}
	if rerr := renew(ctx); rerr != nil {
		return nil, fmt.Errorf("grid: session expired and renewal failed: %w", rerr)
	}
	return c.callOnce(ctx, body)
}

// callOnce sends a request and waits for its typed reply.
func (c *Client) callOnce(ctx context.Context, body proto.Body) (proto.Body, error) {
	corr := c.nextCorr.Add(1)
	ch := make(chan proto.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[corr] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, corr)
		c.mu.Unlock()
	}()

	if err := proto.WriteMessage(c.w, proto.Marshal(corr, body)); err != nil {
		return nil, fmt.Errorf("grid: send: %w", err)
	}
	select {
	case msg, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		reply, err := proto.Unmarshal(msg)
		if err != nil {
			return nil, err
		}
		if eb, ok := reply.(*proto.ErrorBody); ok {
			return nil, &RemoteError{Status: eb.Status, Text: eb.Text}
		}
		return reply, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts the client down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Closed reports whether the client's connection is gone (read-loop
// death included). Connection pools use it to discard dead entries
// before checkout instead of handing callers an ErrClosed.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// OnAuthExpired registers a renewal hook: when a call fails with
// ErrTicketExpired the hook runs (typically re-running LoginWithTicket
// with a fresh ticket) and the call is retried once. A nil fn disables
// renewal.
func (c *Client) OnAuthExpired(fn func(ctx context.Context) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.renew = fn
}

// User returns the authenticated user name, or "".
func (c *Client) User() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.user
}

// Token returns the current session token (nil before Login).
func (c *Client) Token() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.token...)
}

func (c *Client) setSession(user string, token []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.user = user
	c.token = token
}

// Login authenticates with userid and password.
func (c *Client) Login(ctx context.Context, user, password string) error {
	reply, err := c.call(ctx, &proto.AuthRequest{
		User:          user,
		Method:        proto.AuthPassword,
		PasswordProof: []byte(password),
	})
	if err != nil {
		return err
	}
	return c.finishAuth(user, reply)
}

// LoginWithSignature authenticates with the user's ECDSA key (two-phase
// challenge/response).
func (c *Client) LoginWithSignature(ctx context.Context, user string, key *ecdsa.PrivateKey) error {
	// Phase 1: obtain a challenge.
	reply, err := c.call(ctx, &proto.AuthRequest{User: user, Method: proto.AuthSignature})
	if err != nil {
		return err
	}
	ar, ok := reply.(*proto.AuthReply)
	if !ok {
		return fmt.Errorf("grid: unexpected auth reply %T", reply)
	}
	if ar.OK || ar.Reason != "challenge" || len(ar.Token) == 0 {
		return fmt.Errorf("%w: no challenge issued", ErrAuthFailed)
	}
	challenge := ar.Token
	sig, err := auth.SignChallenge(key, challenge)
	if err != nil {
		return err
	}
	// Phase 2: present the signature.
	reply, err = c.call(ctx, &proto.AuthRequest{
		User:      user,
		Method:    proto.AuthSignature,
		Challenge: challenge,
		Signature: sig,
	})
	if err != nil {
		return err
	}
	return c.finishAuth(user, reply)
}

// LoginWithTicket authenticates with a session ticket for this proxy's
// service (single sign-on: no password or signature involved).
func (c *Client) LoginWithTicket(ctx context.Context, user string, ticket []byte) error {
	reply, err := c.call(ctx, &proto.AuthRequest{
		User:   user,
		Method: proto.AuthTicket,
		Ticket: ticket,
	})
	if err != nil {
		return err
	}
	return c.finishAuth(user, reply)
}

func (c *Client) finishAuth(user string, reply proto.Body) error {
	ar, ok := reply.(*proto.AuthReply)
	if !ok {
		return fmt.Errorf("grid: unexpected auth reply %T", reply)
	}
	if !ar.OK {
		return fmt.Errorf("%w: %s", ErrAuthFailed, ar.Reason)
	}
	c.setSession(user, ar.Token)
	return nil
}

// RequestTicket exchanges a TGT for a session ticket for the named
// service (the proxy this client talks to must run the granting service).
func (c *Client) RequestTicket(ctx context.Context, tgt []byte, service string) ([]byte, error) {
	reply, err := c.call(ctx, &proto.TicketRequest{TGT: tgt, Service: service})
	if err != nil {
		return nil, err
	}
	tr, ok := reply.(*proto.TicketReply)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected ticket reply %T", reply)
	}
	if !tr.OK {
		return nil, fmt.Errorf("grid: ticket refused: %s", tr.Reason)
	}
	return tr.Ticket, nil
}

// Status returns compiled summaries for the named sites (all sites when
// none are named).
func (c *Client) Status(ctx context.Context, sites ...string) ([]monitor.SiteSummary, error) {
	reply, err := c.call(ctx, &proto.StatusQuery{Sites: sites})
	if err != nil {
		return nil, err
	}
	report, ok := reply.(*proto.StatusReport)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected status reply %T", reply)
	}
	out := make([]monitor.SiteSummary, len(report.Sites))
	for i, s := range report.Sites {
		out[i] = monitor.SummaryFromStatus(s)
	}
	return out, nil
}

// Member is one row of the proxy's membership directory: a site the
// proxy knows exists, its gossip liveness state, and whether the proxy
// currently holds a live tunnel to it — the directory knows many more
// sites than the proxy dials.
type Member struct {
	Site        string
	Addr        string
	State       string // alive | suspect | dead
	Incarnation uint64
	Version     uint64
	// HasSummary is false while no status summary has arrived yet;
	// SummaryAge is how old the summary is, gossip hops included.
	HasSummary bool
	SummaryAge time.Duration
	// LastHeard is how long ago the answering proxy last received
	// fresher information about the site (for the proxy itself: the
	// time since it last stamped its own status summary).
	// Suspected is true — and SuspectFor counts up — while the site sits
	// in the suspicion pipeline awaiting refutation or conviction.
	LastHeard  time.Duration
	Suspected  bool
	SuspectFor time.Duration
	Tunnel     bool
	// BondConns is the live tunnel's bond width (0 without a tunnel);
	// RTT its smoothed round-trip time (0 until a probe completes).
	BondConns int
	RTT       time.Duration
}

// Members returns the proxy's membership directory, sorted by site.
func (c *Client) Members(ctx context.Context) ([]Member, error) {
	reply, err := c.call(ctx, &proto.MemberList{})
	if err != nil {
		return nil, err
	}
	mr, ok := reply.(*proto.MemberListReply)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected member list reply %T", reply)
	}
	out := make([]Member, len(mr.Members))
	for i, m := range mr.Members {
		out[i] = Member{
			Site:        m.Site,
			Addr:        m.Addr,
			State:       membership.State(m.State).String(),
			Incarnation: m.Incarnation,
			Version:     m.Version,
			Tunnel:      m.Tunnel,
			BondConns:   int(m.BondConns),
			RTT:         time.Duration(m.RTTMicros) * time.Microsecond,
		}
		if m.AgeMillis >= 0 {
			out[i].HasSummary = true
			out[i].SummaryAge = time.Duration(m.AgeMillis) * time.Millisecond
		}
		if m.HeardMillis >= 0 {
			out[i].LastHeard = time.Duration(m.HeardMillis) * time.Millisecond
		}
		if m.SuspectMillis >= 0 {
			out[i].Suspected = true
			out[i].SuspectFor = time.Duration(m.SuspectMillis) * time.Millisecond
		}
	}
	return out, nil
}

// SubmitMPI submits an MPI job and returns its job id.
func (c *Client) SubmitMPI(ctx context.Context, program string, args []string, procs int) (string, error) {
	if c.User() == "" {
		return "", ErrNotAuthenticated
	}
	reply, err := c.call(ctx, &proto.JobSubmit{
		Owner:   c.User(),
		Program: program,
		Args:    args,
		Procs:   uint32(procs),
	})
	if err != nil {
		return "", err
	}
	ju, ok := reply.(*proto.JobUpdate)
	if !ok {
		return "", fmt.Errorf("grid: unexpected submit reply %T", reply)
	}
	return ju.JobID, nil
}

// FileRef names a blob in the grid data plane: a logical file name plus
// the content hash that addresses it in every site store.
type FileRef struct {
	Name string
	Hash string
	Size int64
}

func refFromProto(r proto.StageRef) FileRef { return FileRef{Name: r.Name, Hash: r.Hash, Size: r.Size} }
func (r FileRef) toProto() proto.StageRef {
	return proto.StageRef{Name: r.Name, Hash: r.Hash, Size: r.Size}
}

// Put stores a blob in the site proxy's content-addressed store and
// returns its ref. Staging the same content twice is free: the store
// dedupes by hash. The ref can be handed to SubmitJob as a StageIn.
func (c *Client) Put(ctx context.Context, name string, data []byte) (FileRef, error) {
	if c.User() == "" {
		return FileRef{}, ErrNotAuthenticated
	}
	reply, err := c.call(ctx, &proto.StagePut{Name: name, Data: data})
	if err != nil {
		return FileRef{}, err
	}
	pr, ok := reply.(*proto.StagePutReply)
	if !ok {
		return FileRef{}, fmt.Errorf("grid: unexpected put reply %T", reply)
	}
	return refFromProto(pr.Ref), nil
}

// Get fetches a blob from the site proxy's store by content hash.
func (c *Client) Get(ctx context.Context, hash string) ([]byte, error) {
	if c.User() == "" {
		return nil, ErrNotAuthenticated
	}
	reply, err := c.call(ctx, &proto.StageGet{Hash: hash})
	if err != nil {
		return nil, err
	}
	gr, ok := reply.(*proto.StageGetReply)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected get reply %T", reply)
	}
	return gr.Data, nil
}

// Stat reports whether the site proxy's store holds a blob and its size.
func (c *Client) Stat(ctx context.Context, hash string) (int64, bool, error) {
	if c.User() == "" {
		return 0, false, ErrNotAuthenticated
	}
	reply, err := c.call(ctx, &proto.StageStat{Hash: hash})
	if err != nil {
		return 0, false, err
	}
	sr, ok := reply.(*proto.StageStatReply)
	if !ok {
		return 0, false, fmt.Errorf("grid: unexpected stat reply %T", reply)
	}
	return sr.Size, sr.Present, nil
}

// JobSpec describes an MPI submission with data-plane staging.
type JobSpec struct {
	Program string
	Args    []string
	Procs   int
	// StageIn blobs (previously Put) are made available to every rank
	// via its node environment before the job starts.
	StageIn []FileRef
	// StageOut filters which published outputs return to the origin
	// site; empty means all.
	StageOut []string
}

// SubmitJob submits an MPI job with staged inputs and outputs.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (string, error) {
	if c.User() == "" {
		return "", ErrNotAuthenticated
	}
	req := &proto.JobSubmit{
		Owner:    c.User(),
		Program:  spec.Program,
		Args:     spec.Args,
		Procs:    uint32(spec.Procs),
		StageOut: spec.StageOut,
	}
	for _, ref := range spec.StageIn {
		req.StageIn = append(req.StageIn, ref.toProto())
	}
	reply, err := c.call(ctx, req)
	if err != nil {
		return "", err
	}
	ju, ok := reply.(*proto.JobUpdate)
	if !ok {
		return "", fmt.Errorf("grid: unexpected submit reply %T", reply)
	}
	return ju.JobID, nil
}

// JobOutputs returns the refs of a job's outputs staged back to this
// client's site so far (complete once WaitJob returned). Fetch the bytes
// with Get.
func (c *Client) JobOutputs(ctx context.Context, jobID string) ([]FileRef, error) {
	reply, err := c.call(ctx, &proto.JobQuery{JobID: jobID})
	if err != nil {
		return nil, err
	}
	ju, ok := reply.(*proto.JobUpdate)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected job reply %T", reply)
	}
	out := make([]FileRef, 0, len(ju.Outputs))
	for _, r := range ju.Outputs {
		out = append(out, refFromProto(r))
	}
	return out, nil
}

// JobState queries a job's current state.
func (c *Client) JobState(ctx context.Context, jobID string) (proto.JobState, string, error) {
	reply, err := c.call(ctx, &proto.JobQuery{JobID: jobID})
	if err != nil {
		return 0, "", err
	}
	ju, ok := reply.(*proto.JobUpdate)
	if !ok {
		return 0, "", fmt.Errorf("grid: unexpected job reply %T", reply)
	}
	return ju.State, ju.Detail, nil
}

// WaitJob polls until the job completes. It returns nil for JobDone,
// ErrJobCanceled for cancelled jobs, and ErrJobFailed otherwise (each
// wrapped with the detail).
func (c *Client) WaitJob(ctx context.Context, jobID string) error {
	delay := 5 * time.Millisecond
	for {
		state, detail, err := c.JobState(ctx, jobID)
		if err != nil {
			return err
		}
		switch state {
		case proto.JobDone:
			return nil
		case proto.JobCancelled:
			return fmt.Errorf("%w: %s", ErrJobCanceled, detail)
		case proto.JobFailed:
			return fmt.Errorf("%w: %s", ErrJobFailed, detail)
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
		if delay < 200*time.Millisecond {
			delay *= 2
		}
	}
}

// Cancel asks the proxy to cancel a job. The job's owner may cancel
// their own jobs; other users need the "cancel" grid permission.
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	if c.User() == "" {
		return ErrNotAuthenticated
	}
	reply, err := c.call(ctx, &proto.JobCancel{JobID: jobID})
	if err != nil {
		return err
	}
	if _, ok := reply.(*proto.JobUpdate); !ok {
		return fmt.Errorf("grid: unexpected cancel reply %T", reply)
	}
	return nil
}

// JobRecord is one entry of the proxy's job table.
type JobRecord struct {
	ID     string
	State  string
	Detail string
}

// Jobs lists the jobs tracked by this client's proxy.
func (c *Client) Jobs(ctx context.Context) ([]JobRecord, error) {
	reply, err := c.call(ctx, &proto.JobList{})
	if err != nil {
		return nil, err
	}
	jl, ok := reply.(*proto.JobListReply)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected job list reply %T", reply)
	}
	out := make([]JobRecord, len(jl.Jobs))
	for i, j := range jl.Jobs {
		out[i] = JobRecord{ID: j.JobID, State: j.State, Detail: j.Detail}
	}
	return out, nil
}

// Resources queries the proxy's local resource inventory.
func (c *Client) Resources(ctx context.Context, kind string, constraints map[string]string) ([]registry.Resource, error) {
	var attrs []string
	for k, v := range constraints {
		attrs = append(attrs, k+"="+v)
	}
	reply, err := c.call(ctx, &proto.RegistryQuery{Kind: kind, Attrs: attrs})
	if err != nil {
		return nil, err
	}
	rr, ok := reply.(*proto.RegistryReply)
	if !ok {
		return nil, fmt.Errorf("grid: unexpected registry reply %T", reply)
	}
	out := make([]registry.Resource, len(rr.Resources))
	for i, r := range rr.Resources {
		out[i] = registry.FromProto(r)
	}
	return out, nil
}

// Ping round-trips the control channel.
func (c *Client) Ping(ctx context.Context) error {
	reply, err := c.call(ctx, &proto.Ping{Nonce: 42})
	if err != nil {
		return err
	}
	if pong, ok := reply.(*proto.Pong); !ok || pong.Nonce != 42 {
		return fmt.Errorf("grid: bad pong %v", reply)
	}
	return nil
}

// Tunnel opens an explicitly-secured channel to an endpoint inside a
// remote site, through this client's site proxy and the inter-site TLS
// tunnel. spliceAddr is the proxy's splice service address
// (core.SpliceAddr of the proxy's local address). The returned connection
// is a raw byte pipe to the target.
func (c *Client) Tunnel(ctx context.Context, spliceAddr, appID, targetSite, targetAddr string) (net.Conn, error) {
	token := c.Token()
	if len(token) == 0 {
		return nil, ErrNotAuthenticated
	}
	conn, err := c.network.Dial(ctx, spliceAddr)
	if err != nil {
		return nil, fmt.Errorf("grid: dial splice service: %w", err)
	}
	w := wire.NewWriter(conn)
	r := wire.NewReader(conn)
	open := &proto.StreamOpen{
		AppID:      appID,
		TargetSite: targetSite,
		TargetAddr: targetAddr,
		Kind:       proto.StreamData,
		Token:      token,
	}
	if err := proto.WriteMessage(w, proto.Marshal(1, open)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("grid: send splice request: %w", err)
	}
	msg, err := proto.ReadMessage(r)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("grid: read splice reply: %w", err)
	}
	body, err := proto.Unmarshal(msg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	reply, ok := body.(*proto.StreamOpenReply)
	if !ok {
		_ = conn.Close()
		return nil, fmt.Errorf("grid: unexpected splice reply %T", body)
	}
	if !reply.OK {
		_ = conn.Close()
		return nil, fmt.Errorf("grid: splice refused: %s", reply.Reason)
	}
	// Continue reading through the handshake reader so bytes that
	// arrived right behind the reply are not lost in its buffer.
	return &rawConn{Conn: conn, r: r.Raw()}, nil
}

// rawConn reads through the buffered handshake reader.
type rawConn struct {
	net.Conn
	r io.Reader
}

func (c *rawConn) Read(p []byte) (int, error) { return c.r.Read(p) }
