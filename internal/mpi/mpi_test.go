package mpi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gridproxy/internal/transport"
)

// runWorld launches n ranks as goroutines on one in-memory network and
// runs body in each. It fails the test on any rank error.
func runWorld(t *testing.T, n int, body func(ctx context.Context, w *World) error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mem := transport.NewMemNetwork()
	table := make(map[int]string, n)
	for r := 0; r < n; r++ {
		table[r] = fmt.Sprintf("rank%d", r)
	}
	worlds := make([]*World, n)
	for r := 0; r < n; r++ {
		w, err := Join(ctx, Config{
			Rank: r, WorldSize: n, Table: table,
			ListenAddr: table[r], Network: mem,
		})
		if err != nil {
			t.Fatalf("Join rank %d: %v", r, err)
		}
		worlds[r] = w
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			_ = w.Close()
		}
	})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(ctx, worlds[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestSendRecvPair(t *testing.T) {
	runWorld(t, 2, func(ctx context.Context, w *World) error {
		if w.Rank() == 0 {
			return w.Send(ctx, 1, 7, []byte("hello rank 1"))
		}
		m, err := w.Recv(ctx, 0, 7)
		if err != nil {
			return err
		}
		if string(m.Data) != "hello rank 1" || m.From != 0 || m.Tag != 7 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	runWorld(t, 1, func(ctx context.Context, w *World) error {
		if err := w.Send(ctx, 0, 3, []byte("me")); err != nil {
			return err
		}
		m, err := w.Recv(ctx, 0, 3)
		if err != nil {
			return err
		}
		if string(m.Data) != "me" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	runWorld(t, 2, func(ctx context.Context, w *World) error {
		if w.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1
			// first — matching must be by tag, not arrival order.
			if err := w.Send(ctx, 1, 2, []byte("two")); err != nil {
				return err
			}
			return w.Send(ctx, 1, 1, []byte("one"))
		}
		m1, err := w.Recv(ctx, 0, 1)
		if err != nil {
			return err
		}
		m2, err := w.Recv(ctx, 0, 2)
		if err != nil {
			return err
		}
		if string(m1.Data) != "one" || string(m2.Data) != "two" {
			return fmt.Errorf("got %q, %q", m1.Data, m2.Data)
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	const n = 4
	runWorld(t, n, func(ctx context.Context, w *World) error {
		if w.Rank() != 0 {
			return w.Send(ctx, 0, w.Rank(), []byte{byte(w.Rank())})
		}
		seen := make(map[int]bool)
		for i := 0; i < n-1; i++ {
			m, err := w.Recv(ctx, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Tag != m.From || int(m.Data[0]) != m.From {
				return fmt.Errorf("inconsistent message %+v", m)
			}
			seen[m.From] = true
		}
		if len(seen) != n-1 {
			return fmt.Errorf("saw %v", seen)
		}
		return nil
	})
}

func TestManyMessagesOrderPreservedPerPair(t *testing.T) {
	const msgs = 200
	runWorld(t, 2, func(ctx context.Context, w *World) error {
		if w.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := w.Send(ctx, 1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			m, err := w.Recv(ctx, 0, 5)
			if err != nil {
				return err
			}
			if m.Data[0] != byte(i) {
				return fmt.Errorf("message %d out of order: got %d", i, m.Data[0])
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var counter int32
			var mu sync.Mutex
			runWorld(t, n, func(ctx context.Context, w *World) error {
				mu.Lock()
				counter++
				mu.Unlock()
				if err := w.Barrier(ctx); err != nil {
					return err
				}
				mu.Lock()
				defer mu.Unlock()
				if int(counter) != n {
					return fmt.Errorf("barrier released with counter %d of %d", counter, n)
				}
				return nil
			})
		})
	}
}

func TestRepeatedBarriers(t *testing.T) {
	// Reused barriers must not cross-match between instances.
	runWorld(t, 5, func(ctx context.Context, w *World) error {
		for i := 0; i < 20; i++ {
			if err := w.Barrier(ctx); err != nil {
				return fmt.Errorf("barrier %d: %w", i, err)
			}
		}
		return nil
	})
}

func TestBcastAllRoots(t *testing.T) {
	const n = 6
	for root := 0; root < n; root++ {
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			runWorld(t, n, func(ctx context.Context, w *World) error {
				var in []byte
				if w.Rank() == root {
					in = payload
				}
				out, err := w.Bcast(ctx, root, in)
				if err != nil {
					return err
				}
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", w.Rank(), out)
				}
				return nil
			})
		})
	}
}

func TestConsecutiveBcastsDifferentRoots(t *testing.T) {
	// Back-to-back broadcasts with different roots exercise the
	// per-collective tag sequencing.
	runWorld(t, 4, func(ctx context.Context, w *World) error {
		for round := 0; round < 10; round++ {
			root := round % 4
			var in []byte
			if w.Rank() == root {
				in = []byte{byte(round)}
			}
			out, err := w.Bcast(ctx, root, in)
			if err != nil {
				return err
			}
			if len(out) != 1 || out[0] != byte(round) {
				return fmt.Errorf("round %d: got %v", round, out)
			}
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(ctx context.Context, w *World) error {
				local := []float64{float64(w.Rank()), 1}
				out, err := w.Reduce(ctx, 0, OpSum, local)
				if err != nil {
					return err
				}
				if w.Rank() != 0 {
					if out != nil {
						return fmt.Errorf("non-root got %v", out)
					}
					return nil
				}
				wantSum := float64(n*(n-1)) / 2
				if out[0] != wantSum || out[1] != float64(n) {
					return fmt.Errorf("reduce = %v, want [%v %v]", out, wantSum, n)
				}
				return nil
			})
		})
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	const n, root = 5, 3
	runWorld(t, n, func(ctx context.Context, w *World) error {
		out, err := w.Reduce(ctx, root, OpMax, []float64{float64(w.Rank())})
		if err != nil {
			return err
		}
		if w.Rank() == root && out[0] != float64(n-1) {
			return fmt.Errorf("max = %v", out)
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	const n = 7
	runWorld(t, n, func(ctx context.Context, w *World) error {
		out, err := w.Allreduce(ctx, OpSum, []float64{1})
		if err != nil {
			return err
		}
		if out[0] != float64(n) {
			return fmt.Errorf("allreduce = %v", out)
		}
		return nil
	})
}

func TestAllOps(t *testing.T) {
	vals := []float64{3, -1, 4, 1, 5}
	tests := []struct {
		name string
		op   Op
		want float64
	}{
		{"sum", OpSum, 12},
		{"prod", OpProd, -60},
		{"max", OpMax, 5},
		{"min", OpMin, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			runWorld(t, len(vals), func(ctx context.Context, w *World) error {
				out, err := w.Allreduce(ctx, tt.op, []float64{vals[w.Rank()]})
				if err != nil {
					return err
				}
				if out[0] != tt.want {
					return fmt.Errorf("%s = %v, want %v", tt.name, out[0], tt.want)
				}
				return nil
			})
		})
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 5
	runWorld(t, n, func(ctx context.Context, w *World) error {
		// Scatter: root 0 hands rank i the byte i*10.
		var chunks [][]byte
		if w.Rank() == 0 {
			for i := 0; i < n; i++ {
				chunks = append(chunks, []byte{byte(i * 10)})
			}
		}
		mine, err := w.Scatter(ctx, 0, chunks)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != byte(w.Rank()*10) {
			return fmt.Errorf("scatter got %v", mine)
		}
		// Gather back on root 2.
		parts, err := w.Gather(ctx, 2, []byte{mine[0] + 1})
		if err != nil {
			return err
		}
		if w.Rank() == 2 {
			for i, p := range parts {
				if len(p) != 1 || p[0] != byte(i*10+1) {
					return fmt.Errorf("gather[%d] = %v", i, p)
				}
			}
		} else if parts != nil {
			return fmt.Errorf("non-root gather = %v", parts)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	const n = 4
	runWorld(t, n, func(ctx context.Context, w *World) error {
		out, err := w.Allgather(ctx, []byte(fmt.Sprintf("r%d", w.Rank())))
		if err != nil {
			return err
		}
		for i, p := range out {
			if string(p) != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("allgather[%d] = %q", i, p)
			}
		}
		return nil
	})
}

func TestAllgatherEmptyChunks(t *testing.T) {
	runWorld(t, 3, func(ctx context.Context, w *World) error {
		var data []byte
		if w.Rank() == 1 {
			data = []byte("only-1")
		}
		out, err := w.Allgather(ctx, data)
		if err != nil {
			return err
		}
		if len(out) != 3 || len(out[0]) != 0 || string(out[1]) != "only-1" || len(out[2]) != 0 {
			return fmt.Errorf("allgather = %q", out)
		}
		return nil
	})
}

func TestValidationErrors(t *testing.T) {
	runWorld(t, 2, func(ctx context.Context, w *World) error {
		if err := w.Send(ctx, 5, 1, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("send to 5: %v", err)
		}
		if err := w.Send(ctx, 1, -3, nil); !errors.Is(err, ErrBadTag) {
			return fmt.Errorf("negative tag: %v", err)
		}
		if _, err := w.Recv(ctx, 9, 0); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("recv from 9: %v", err)
		}
		if _, err := w.Recv(ctx, 0, -2); !errors.Is(err, ErrBadTag) {
			return fmt.Errorf("recv tag -2: %v", err)
		}
		if _, err := w.Bcast(ctx, 9, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("bcast root 9: %v", err)
		}
		return nil
	})
}

func TestJoinValidation(t *testing.T) {
	mem := transport.NewMemNetwork()
	ctx := context.Background()
	if _, err := Join(ctx, Config{Rank: 0, WorldSize: 0, Network: mem}); err == nil {
		t.Error("world size 0 accepted")
	}
	if _, err := Join(ctx, Config{Rank: 3, WorldSize: 2, Network: mem, ListenAddr: "x"}); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := Join(ctx, Config{Rank: 0, WorldSize: 1}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestRecvContextCancel(t *testing.T) {
	runWorld(t, 1, func(ctx context.Context, w *World) error {
		cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
		defer cancel()
		_, err := w.Recv(cctx, AnySource, AnyTag)
		if !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestCloseUnblocksRecv(t *testing.T) {
	ctx := context.Background()
	mem := transport.NewMemNetwork()
	w, err := Join(ctx, Config{
		Rank: 0, WorldSize: 1, Table: map[int]string{0: "r0"},
		ListenAddr: "r0", Network: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := w.Recv(ctx, AnySource, AnyTag)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	// Sends after close fail.
	if err := w.Send(ctx, 0, 1, nil); err == nil {
		t.Skip("self-send after close delivers locally; acceptable")
	}
}

func TestFloat64Helpers(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Inf(1), math.Pi}
	back, err := DecodeFloat64s(EncodeFloat64s(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Errorf("index %d: %v != %v", i, back[i], vals[i])
		}
	}
	if _, err := DecodeFloat64s([]byte{1, 2, 3}); err == nil {
		t.Error("misaligned payload accepted")
	}
}

func TestLargeMessages(t *testing.T) {
	const size = 1 << 20
	runWorld(t, 2, func(ctx context.Context, w *World) error {
		if w.Rank() == 0 {
			data := bytes.Repeat([]byte{0x5A}, size)
			return w.Send(ctx, 1, 0, data)
		}
		m, err := w.Recv(ctx, 0, 0)
		if err != nil {
			return err
		}
		if len(m.Data) != size {
			return fmt.Errorf("len = %d", len(m.Data))
		}
		for _, b := range m.Data {
			if b != 0x5A {
				return errors.New("payload corrupted")
			}
		}
		return nil
	})
}

func TestPiEstimation(t *testing.T) {
	// The canonical MPI demo: integrate 4/(1+x^2) over [0,1] split
	// across ranks, allreduce the partial sums.
	const n = 4
	const steps = 100_000
	runWorld(t, n, func(ctx context.Context, w *World) error {
		h := 1.0 / steps
		var local float64
		for i := w.Rank(); i < steps; i += n {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x)
		}
		out, err := w.Allreduce(ctx, OpSum, []float64{local * h})
		if err != nil {
			return err
		}
		if math.Abs(out[0]-math.Pi) > 1e-6 {
			return fmt.Errorf("pi = %v", out[0])
		}
		return nil
	})
}
