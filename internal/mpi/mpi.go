// Package mpi is a from-scratch message-passing runtime with the MPI
// programming model: ranks, point-to-point Send/Recv with tag matching,
// and the standard collectives (Barrier, Bcast, Reduce, Allreduce,
// Scatter, Gather, Allgather).
//
// The runtime is deliberately transport-blind: every rank reaches every
// other rank through an address table and a transport.Network. When all
// addresses are site-local the application runs exactly as on one cluster
// (paper Figure 3a). When some addresses point at a proxy's virtual-slave
// endpoints, traffic is transparently multiplexed through the inter-site
// TLS tunnel (Figure 3b) — the application code cannot tell the
// difference, which is the paper's MPI-support claim: "applications
// written in MPI can be executed transparently in the Grid, i.e., without
// the need to alter any code".
package mpi

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"gridproxy/internal/logging"
	"gridproxy/internal/transport"
	"gridproxy/internal/wire"
)

// Wildcards for Recv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches any user tag.
	AnyTag = -1
)

// internalTagBase marks tags reserved for collectives. User tags must be
// non-negative.
const internalTagBase = -1000

// Frame types on rank-to-rank connections.
const (
	frameHello byte = 0x20
	frameMsg   byte = 0x21
)

// Package errors.
var (
	// ErrClosed is returned after the world shut down.
	ErrClosed = errors.New("mpi: world closed")
	// ErrBadRank is returned for out-of-range ranks.
	ErrBadRank = errors.New("mpi: rank out of range")
	// ErrBadTag is returned for negative user tags.
	ErrBadTag = errors.New("mpi: user tags must be non-negative")
)

// Message is one received point-to-point message.
type Message struct {
	From int
	Tag  int
	Data []byte
}

// Config wires a rank into its world.
type Config struct {
	// Rank of this process and total WorldSize.
	Rank      int
	WorldSize int
	// Table maps each rank to the address this process dials to reach
	// it. The entry for Rank itself is ignored.
	Table map[int]string
	// ListenAddr is where this rank accepts peer connections.
	ListenAddr string
	// Network is the transport (site-local network for grid nodes).
	Network transport.Network
	// Logger is optional.
	Logger *logging.Logger
}

// World is one rank's handle on the computation.
type World struct {
	rank    int
	size    int
	table   map[int]string
	network transport.Network
	log     *logging.Logger

	listener net.Listener
	inbox    *inbox

	mu       sync.Mutex
	sendTo   map[int]*sendConn
	accepted map[net.Conn]struct{}
	closed   bool
	collSeq  uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type sendConn struct {
	once sync.Once
	conn net.Conn
	w    *wire.Writer
	err  error
}

// Join starts this rank: it binds its listen address and returns
// immediately; connections to peers are established lazily on first send.
func Join(ctx context.Context, cfg Config) (*World, error) {
	if cfg.WorldSize <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", cfg.WorldSize)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.WorldSize {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadRank, cfg.Rank, cfg.WorldSize)
	}
	if cfg.Network == nil {
		return nil, errors.New("mpi: nil network")
	}
	ln, err := cfg.Network.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, cfg.ListenAddr, err)
	}
	wctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	w := &World{
		rank:     cfg.Rank,
		size:     cfg.WorldSize,
		table:    cfg.Table,
		network:  cfg.Network,
		log:      cfg.Logger,
		listener: ln,
		inbox:    newInbox(),
		sendTo:   make(map[int]*sendConn),
		accepted: make(map[net.Conn]struct{}),
		ctx:      wctx,
		cancel:   cancel,
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Rank returns this process's rank.
func (w *World) Rank() int { return w.rank }

// Size returns the world size.
func (w *World) Size() int { return w.size }

// acceptLoop admits peer connections; each must open with a Hello frame
// identifying the sender's rank, after which the connection carries only
// inbound messages (the peer's sends).
func (w *World) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			_ = conn.Close()
			return
		}
		w.accepted[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.readLoop(conn)
	}
}

func (w *World) readLoop(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		_ = conn.Close()
		w.mu.Lock()
		delete(w.accepted, conn)
		w.mu.Unlock()
	}()
	// Frames are read through the wire payload pool; this loop is the
	// single owner of each lease and releases it once the fields it keeps
	// (Buffer.Bytes copies the message body) are extracted.
	r := wire.NewReader(conn)
	frame, err := r.ReadFramePooled()
	if err != nil || frame.Type != frameHello || len(frame.Payload) < 4 {
		wire.PutPayload(frame.Payload)
		w.log.Warn("mpi: bad hello", "rank", w.rank, "err", err)
		return
	}
	from := int(wire.NewBuffer(frame.Payload).Uint32())
	wire.PutPayload(frame.Payload)
	if from < 0 || from >= w.size {
		w.log.Warn("mpi: hello from invalid rank", "rank", w.rank, "from", from)
		return
	}
	for {
		frame, err := r.ReadFramePooled()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				w.log.Debug("mpi: read loop end", "rank", w.rank, "from", from, "err", err)
			}
			return
		}
		if frame.Type != frameMsg {
			wire.PutPayload(frame.Payload)
			w.log.Warn("mpi: unexpected frame", "rank", w.rank, "type", frame.Type)
			return
		}
		buf := wire.NewBuffer(frame.Payload)
		msgFrom := int(buf.Uint32())
		tag := int(buf.Int64())
		data := buf.Bytes()
		corrupt := buf.Err() != nil || msgFrom != from
		wire.PutPayload(frame.Payload)
		if corrupt {
			w.log.Warn("mpi: corrupt message", "rank", w.rank, "from", from)
			return
		}
		w.inbox.deliver(Message{From: msgFrom, Tag: tag, Data: data})
	}
}

// connTo returns (dialing if needed) the send connection to a peer.
func (w *World) connTo(ctx context.Context, to int) (*sendConn, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	sc, ok := w.sendTo[to]
	if !ok {
		sc = &sendConn{}
		w.sendTo[to] = sc
	}
	w.mu.Unlock()

	sc.once.Do(func() {
		addr, ok := w.table[to]
		if !ok {
			sc.err = fmt.Errorf("mpi: rank %d has no address for rank %d", w.rank, to)
			return
		}
		// Ranks start concurrently across nodes and sites; the peer's
		// listener may not be bound yet, so dialing retries with
		// backoff until the context gives up.
		conn, err := dialRetry(ctx, w.network, addr)
		if err != nil {
			sc.err = fmt.Errorf("mpi: rank %d dial rank %d (%s): %w", w.rank, to, addr, err)
			return
		}
		writer := wire.NewWriter(conn)
		hello := wire.AppendUint32(nil, uint32(w.rank))
		if err := writer.WriteFrame(frameHello, hello); err != nil {
			_ = conn.Close()
			sc.err = fmt.Errorf("mpi: rank %d hello to %d: %w", w.rank, to, err)
			return
		}
		sc.conn = conn
		sc.w = writer
	})
	if sc.err != nil {
		return nil, sc.err
	}
	return sc, nil
}

// Send delivers data to rank `to` with the given tag. User tags must be
// non-negative. Sends are buffered by the transport; Send returns once the
// message is written.
func (w *World) Send(ctx context.Context, to, tag int, data []byte) error {
	if tag < 0 {
		return ErrBadTag
	}
	return w.send(ctx, to, tag, data)
}

func (w *World) send(ctx context.Context, to, tag int, data []byte) error {
	if to < 0 || to >= w.size {
		return fmt.Errorf("%w: send to %d", ErrBadRank, to)
	}
	if to == w.rank {
		// Self-sends loop back without touching the network.
		w.inbox.deliver(Message{From: w.rank, Tag: tag, Data: append([]byte(nil), data...)})
		return nil
	}
	sc, err := w.connTo(ctx, to)
	if err != nil {
		return err
	}
	// Gather header and body straight into the writer's coalescing
	// buffer: rank + tag + uvarint length fit a small stack prefix, and
	// the message body is never copied into an intermediate payload.
	var hb [22]byte
	hdr := wire.AppendUint32(hb[:0], uint32(w.rank))
	hdr = wire.AppendInt64(hdr, int64(tag))
	hdr = binary.AppendUvarint(hdr, uint64(len(data)))
	if err := sc.w.WriteFramev(frameMsg, hdr, data); err != nil {
		return fmt.Errorf("mpi: rank %d send to %d: %w", w.rank, to, err)
	}
	return nil
}

// Recv returns the next message matching (from, tag); AnySource and AnyTag
// wildcard. It blocks until a match arrives, ctx is done, or the world
// closes.
func (w *World) Recv(ctx context.Context, from, tag int) (Message, error) {
	if tag < 0 && tag != AnyTag {
		return Message{}, ErrBadTag
	}
	return w.recv(ctx, from, tag)
}

func (w *World) recv(ctx context.Context, from, tag int) (Message, error) {
	if from != AnySource && (from < 0 || from >= w.size) {
		return Message{}, fmt.Errorf("%w: recv from %d", ErrBadRank, from)
	}
	return w.inbox.recv(ctx, w.ctx, from, tag)
}

// Close tears the rank down: the listener and all connections close and
// pending Recv calls fail.
func (w *World) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]*sendConn, 0, len(w.sendTo))
	for _, sc := range w.sendTo {
		conns = append(conns, sc)
	}
	inbound := make([]net.Conn, 0, len(w.accepted))
	for conn := range w.accepted {
		inbound = append(inbound, conn)
	}
	w.mu.Unlock()

	w.cancel()
	_ = w.listener.Close()
	for _, sc := range conns {
		if sc.conn != nil {
			_ = sc.conn.Close()
		}
	}
	for _, conn := range inbound {
		_ = conn.Close()
	}
	w.inbox.close()
	w.wg.Wait()
	return nil
}

// --- inbox -----------------------------------------------------------------

// inbox holds undelivered messages and wakes matching receivers.
type inbox struct {
	mu      sync.Mutex
	pending []Message
	waiters map[*waiter]struct{}
	closed  bool
}

type waiter struct {
	from, tag int
	ch        chan Message
}

func newInbox() *inbox {
	return &inbox{waiters: make(map[*waiter]struct{})}
}

func matches(m Message, from, tag int) bool {
	return (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag)
}

func (in *inbox) deliver(m Message) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	for wt := range in.waiters {
		if matches(m, wt.from, wt.tag) {
			delete(in.waiters, wt)
			wt.ch <- m
			return
		}
	}
	in.pending = append(in.pending, m)
}

func (in *inbox) recv(ctx, worldCtx context.Context, from, tag int) (Message, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return Message{}, ErrClosed
	}
	for i, m := range in.pending {
		if matches(m, from, tag) {
			in.pending = append(in.pending[:i], in.pending[i+1:]...)
			in.mu.Unlock()
			return m, nil
		}
	}
	wt := &waiter{from: from, tag: tag, ch: make(chan Message, 1)}
	in.waiters[wt] = struct{}{}
	in.mu.Unlock()

	select {
	case m := <-wt.ch:
		return m, nil
	case <-ctx.Done():
		in.drop(wt)
		// A message may have raced into the channel; prefer it.
		select {
		case m := <-wt.ch:
			return m, nil
		default:
		}
		return Message{}, ctx.Err()
	case <-worldCtx.Done():
		in.drop(wt)
		select {
		case m := <-wt.ch:
			return m, nil
		default:
		}
		return Message{}, ErrClosed
	}
}

func (in *inbox) drop(wt *waiter) {
	in.mu.Lock()
	delete(in.waiters, wt)
	in.mu.Unlock()
}

func (in *inbox) close() {
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
}

// dialStartupWindow bounds how long a rank retries dialing a peer that has
// not bound its listener yet.
const dialStartupWindow = 15 * time.Second

// dialRetry dials addr, retrying with linear backoff while the peer's
// listener is still coming up.
func dialRetry(ctx context.Context, network transport.Network, addr string) (net.Conn, error) {
	deadline := time.Now().Add(dialStartupWindow)
	delay := 2 * time.Millisecond
	for {
		conn, err := network.Dial(ctx, addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
		if delay < 100*time.Millisecond {
			delay += 2 * time.Millisecond
		}
	}
}

// --- float64 payload helpers ------------------------------------------------

// EncodeFloat64s packs a float64 slice for Send.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s unpacks a payload written by EncodeFloat64s.
func DecodeFloat64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	return out, nil
}
