package mpi

import (
	"context"
	"fmt"
)

// Collective kinds. Each collective call gets a unique internal tag
// derived from (kind, per-world sequence number); because MPI semantics
// require every rank to invoke collectives in the same order, the sequence
// numbers agree across ranks. This prevents messages from consecutive
// collectives (for example two back-to-back Bcasts with different roots)
// from cross-matching — the classic reused-barrier hazard.
type collKind int

const (
	collBarrier collKind = iota
	collBcast
	collReduce
	collGather
	collScatter
	numCollKinds
)

// collTag maps (kind, seq) to a negative tag disjoint from user tags.
func collTag(kind collKind, seq uint64) int {
	return internalTagBase - int(kind) - int(numCollKinds)*int(seq)
}

// nextCollSeq returns the world's next collective sequence number.
// Collectives must be invoked from a single goroutine per rank (standard
// MPI semantics), so a plain field suffices; the mutex guards against
// accidental misuse being a data race.
func (w *World) nextCollSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.collSeq
	w.collSeq++
	return seq
}

// Op is a reduction operator over float64 vectors. Both inputs have equal
// length; the result is written into acc.
type Op func(acc, in []float64)

// Built-in reduction operators.
var (
	// OpSum adds element-wise.
	OpSum Op = func(acc, in []float64) {
		for i := range acc {
			acc[i] += in[i]
		}
	}
	// OpProd multiplies element-wise.
	OpProd Op = func(acc, in []float64) {
		for i := range acc {
			acc[i] *= in[i]
		}
	}
	// OpMax keeps the element-wise maximum.
	OpMax Op = func(acc, in []float64) {
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	}
	// OpMin keeps the element-wise minimum.
	OpMin Op = func(acc, in []float64) {
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	}
)

// Barrier blocks until every rank has entered it. It uses the
// dissemination algorithm: ceil(log2(n)) rounds of pairwise exchange.
func (w *World) Barrier(ctx context.Context) error {
	tag := collTag(collBarrier, w.nextCollSeq())
	n := w.size
	if n == 1 {
		return nil
	}
	for step := 1; step < n; step *= 2 {
		to := (w.rank + step) % n
		from := (w.rank - step + n) % n
		if err := w.send(ctx, to, tag, nil); err != nil {
			return fmt.Errorf("mpi: barrier send: %w", err)
		}
		if _, err := w.recv(ctx, from, tag); err != nil {
			return fmt.Errorf("mpi: barrier recv: %w", err)
		}
	}
	return nil
}

// Bcast distributes root's data to every rank using a binomial tree and
// returns the received copy (root returns data unchanged).
func (w *World) Bcast(ctx context.Context, root int, data []byte) ([]byte, error) {
	tag := collTag(collBcast, w.nextCollSeq())
	return w.bcast(ctx, root, data, tag)
}

func (w *World) bcast(ctx context.Context, root int, data []byte, tag int) ([]byte, error) {
	if root < 0 || root >= w.size {
		return nil, fmt.Errorf("%w: bcast root %d", ErrBadRank, root)
	}
	n := w.size
	if n == 1 {
		return data, nil
	}
	// Work in a rotated space where the root is position 0.
	vrank := (w.rank - root + n) % n
	if vrank != 0 {
		m, err := w.recv(ctx, AnySource, tag)
		if err != nil {
			return nil, fmt.Errorf("mpi: bcast recv: %w", err)
		}
		data = m.Data
	}
	mask := 1
	for mask < n {
		mask *= 2
	}
	for mask /= 2; mask > 0; mask /= 2 {
		if vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := vrank | mask
			if child < n {
				to := (child + root) % n
				if err := w.send(ctx, to, tag, data); err != nil {
					return nil, fmt.Errorf("mpi: bcast send: %w", err)
				}
			}
		}
	}
	return data, nil
}

// Reduce combines every rank's vector with op; the result lands on root
// (other ranks receive nil). All vectors must have the same length.
func (w *World) Reduce(ctx context.Context, root int, op Op, local []float64) ([]float64, error) {
	tag := collTag(collReduce, w.nextCollSeq())
	return w.reduce(ctx, root, op, local, tag)
}

func (w *World) reduce(ctx context.Context, root int, op Op, local []float64, tag int) ([]float64, error) {
	if root < 0 || root >= w.size {
		return nil, fmt.Errorf("%w: reduce root %d", ErrBadRank, root)
	}
	n := w.size
	acc := append([]float64(nil), local...)
	if n == 1 {
		return acc, nil
	}
	vrank := (w.rank - root + n) % n
	// Binary-tree reduction in rotated space: at step s, positions with
	// bit s set send to their partner and drop out; positions that stay
	// have all bits below s clear.
	for step := 1; step < n; step *= 2 {
		if vrank&step != 0 {
			parent := ((vrank - step) + root) % n
			if err := w.send(ctx, parent, tag, EncodeFloat64s(acc)); err != nil {
				return nil, fmt.Errorf("mpi: reduce send: %w", err)
			}
			return nil, nil
		}
		child := vrank + step
		if child < n {
			from := (child + root) % n
			m, err := w.recv(ctx, from, tag)
			if err != nil {
				return nil, fmt.Errorf("mpi: reduce recv: %w", err)
			}
			in, err := DecodeFloat64s(m.Data)
			if err != nil {
				return nil, err
			}
			if len(in) != len(acc) {
				return nil, fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(in), len(acc))
			}
			op(acc, in)
		}
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast: every rank receives the
// combined vector.
func (w *World) Allreduce(ctx context.Context, op Op, local []float64) ([]float64, error) {
	acc, err := w.Reduce(ctx, 0, op, local)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if w.rank == 0 {
		payload = EncodeFloat64s(acc)
	}
	out, err := w.Bcast(ctx, 0, payload)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out)
}

// Gather collects every rank's data on root, ordered by rank. Non-root
// ranks return nil.
func (w *World) Gather(ctx context.Context, root int, data []byte) ([][]byte, error) {
	tag := collTag(collGather, w.nextCollSeq())
	return w.gather(ctx, root, data, tag)
}

func (w *World) gather(ctx context.Context, root int, data []byte, tag int) ([][]byte, error) {
	if root < 0 || root >= w.size {
		return nil, fmt.Errorf("%w: gather root %d", ErrBadRank, root)
	}
	if w.rank != root {
		if err := w.send(ctx, root, tag, data); err != nil {
			return nil, fmt.Errorf("mpi: gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, w.size)
	seen := make([]bool, w.size)
	out[root] = append([]byte(nil), data...)
	seen[root] = true
	for i := 0; i < w.size-1; i++ {
		m, err := w.recv(ctx, AnySource, tag)
		if err != nil {
			return nil, fmt.Errorf("mpi: gather recv: %w", err)
		}
		if seen[m.From] {
			return nil, fmt.Errorf("mpi: gather duplicate from rank %d", m.From)
		}
		seen[m.From] = true
		out[m.From] = m.Data
	}
	return out, nil
}

// Scatter sends chunks[i] to rank i and returns this rank's chunk. Only
// root's chunks argument is consulted; it must have exactly world-size
// entries.
func (w *World) Scatter(ctx context.Context, root int, chunks [][]byte) ([]byte, error) {
	tag := collTag(collScatter, w.nextCollSeq())
	if root < 0 || root >= w.size {
		return nil, fmt.Errorf("%w: scatter root %d", ErrBadRank, root)
	}
	if w.rank == root {
		if len(chunks) != w.size {
			return nil, fmt.Errorf("mpi: scatter needs %d chunks, got %d", w.size, len(chunks))
		}
		for i, chunk := range chunks {
			if i == root {
				continue
			}
			if err := w.send(ctx, i, tag, chunk); err != nil {
				return nil, fmt.Errorf("mpi: scatter send: %w", err)
			}
		}
		return append([]byte(nil), chunks[root]...), nil
	}
	m, err := w.recv(ctx, root, tag)
	if err != nil {
		return nil, fmt.Errorf("mpi: scatter recv: %w", err)
	}
	return m.Data, nil
}

// Allgather collects every rank's data on every rank, ordered by rank. It
// is implemented as Gather on rank 0 followed by a Bcast of the
// length-prefixed concatenation.
func (w *World) Allgather(ctx context.Context, data []byte) ([][]byte, error) {
	parts, err := w.Gather(ctx, 0, data)
	if err != nil {
		return nil, err
	}
	var blob []byte
	if w.rank == 0 {
		for _, p := range parts {
			blob = appendChunk(blob, p)
		}
	}
	blob, err = w.Bcast(ctx, 0, blob)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, w.size)
	rest := blob
	for len(rest) > 0 {
		var chunk []byte
		chunk, rest, err = cutChunk(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk)
	}
	if len(out) != w.size {
		return nil, fmt.Errorf("mpi: allgather got %d chunks, want %d", len(out), w.size)
	}
	return out, nil
}

func appendChunk(b, chunk []byte) []byte {
	n := uint32(len(chunk))
	b = append(b, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(b, chunk...)
}

func cutChunk(b []byte) (chunk, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("mpi: truncated chunk header")
	}
	n := int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("mpi: truncated chunk body")
	}
	return b[4 : 4+n], b[4+n:], nil
}
