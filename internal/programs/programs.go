// Package programs ships the demo applications installed on grid nodes by
// the daemons and examples — the in-process equivalent of the binaries an
// administrator would deploy. Each is an ordinary MPI program written
// against package mpi; none knows whether it runs on one LAN or across
// sites.
package programs

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"gridproxy/internal/mpi"
	"gridproxy/internal/mpirun"
	"gridproxy/internal/node"
	"gridproxy/internal/stage"
)

// RegisterAll installs every demo program on an agent.
func RegisterAll(agent *node.Agent) {
	agent.RegisterProgram("pi", Pi())
	agent.RegisterProgram("ring", Ring())
	agent.RegisterProgram("sleep", Sleep())
	agent.RegisterProgram("stress", Stress())
	agent.RegisterProgram("digest", Digest())
}

// Pi estimates π by midpoint integration of 4/(1+x²) over [0,1], split
// across ranks and combined with Allreduce — the canonical MPI demo.
// Args: [steps] (default 1e6). Rank 0 validates the estimate.
func Pi() node.ProgramFunc {
	return mpirun.Program(func(ctx context.Context, w *mpi.World, env node.Env) error {
		steps := 1_000_000
		if len(env.Args) > 0 {
			n, err := strconv.Atoi(env.Args[0])
			if err != nil {
				return fmt.Errorf("pi: bad steps %q: %w", env.Args[0], err)
			}
			steps = n
		}
		h := 1.0 / float64(steps)
		var local float64
		for i := w.Rank(); i < steps; i += w.Size() {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x)
		}
		out, err := w.Allreduce(ctx, mpi.OpSum, []float64{local * h})
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			if math.Abs(out[0]-math.Pi) > 1e-4 {
				return fmt.Errorf("pi: estimate %v too far from π", out[0])
			}
		}
		return nil
	})
}

// Ring passes a token around all ranks a configurable number of times.
// Args: [rounds] (default 3).
func Ring() node.ProgramFunc {
	return mpirun.Program(func(ctx context.Context, w *mpi.World, env node.Env) error {
		rounds := 3
		if len(env.Args) > 0 {
			n, err := strconv.Atoi(env.Args[0])
			if err != nil {
				return fmt.Errorf("ring: bad rounds %q: %w", env.Args[0], err)
			}
			rounds = n
		}
		if w.Size() == 1 {
			return nil
		}
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		for round := 0; round < rounds; round++ {
			if w.Rank() == 0 {
				if err := w.Send(ctx, next, round, []byte{byte(round)}); err != nil {
					return err
				}
				if _, err := w.Recv(ctx, prev, round); err != nil {
					return err
				}
			} else {
				m, err := w.Recv(ctx, prev, round)
				if err != nil {
					return err
				}
				if err := w.Send(ctx, next, round, m.Data); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Sleep holds every rank busy for a wall-clock duration (scaled by node
// speed), then synchronizes — a stand-in for real compute when exercising
// the scheduler. Args: [duration] (default 50ms of reference-node work).
func Sleep() node.ProgramFunc {
	return mpirun.Program(func(ctx context.Context, w *mpi.World, env node.Env) error {
		d := 50 * time.Millisecond
		if len(env.Args) > 0 {
			parsed, err := time.ParseDuration(env.Args[0])
			if err != nil {
				return fmt.Errorf("sleep: bad duration %q: %w", env.Args[0], err)
			}
			d = parsed
		}
		speed := env.Speed
		if speed <= 0 {
			speed = 1
		}
		scaled := time.Duration(float64(d) / speed)
		timer := time.NewTimer(scaled)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return w.Barrier(ctx)
	})
}

// Digest is the data-plane demo: every rank reads a staged input blob,
// hashes it, and publishes "digest-<rank>" with the name, size, and
// SHA-256 so the caller can check what the ranks actually saw. Rank 0
// cross-checks agreement with an Allreduce over the first hash byte.
// Args: [name] (default "input").
func Digest() node.ProgramFunc {
	return mpirun.Program(func(ctx context.Context, w *mpi.World, env node.Env) error {
		name := "input"
		if len(env.Args) > 0 {
			name = env.Args[0]
		}
		data, ok := env.StagedInput(name)
		if !ok {
			return fmt.Errorf("digest: no staged input %q (submit with -in)", name)
		}
		sum := stage.Hash(data)
		out, err := w.Allreduce(ctx, mpi.OpSum, []float64{float64(sum[0])})
		if err != nil {
			return err
		}
		if w.Rank() == 0 && out[0] != float64(sum[0])*float64(w.Size()) {
			return fmt.Errorf("digest: ranks disagree on staged content of %q", name)
		}
		return env.PublishOutput(fmt.Sprintf("digest-%d", w.Rank()),
			[]byte(fmt.Sprintf("%s %d %s\n", name, len(data), sum)))
	})
}

// Stress exchanges configurable message volumes between all rank pairs —
// a traffic generator for the tunnel path. Args: [messages] [bytes]
// (defaults 10 and 4096).
func Stress() node.ProgramFunc {
	return mpirun.Program(func(ctx context.Context, w *mpi.World, env node.Env) error {
		messages, size := 10, 4096
		if len(env.Args) > 0 {
			n, err := strconv.Atoi(env.Args[0])
			if err != nil {
				return fmt.Errorf("stress: bad messages %q: %w", env.Args[0], err)
			}
			messages = n
		}
		if len(env.Args) > 1 {
			n, err := strconv.Atoi(env.Args[1])
			if err != nil {
				return fmt.Errorf("stress: bad size %q: %w", env.Args[1], err)
			}
			size = n
		}
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		// Each rank sends to its successor and receives from its
		// predecessor, round-robin, messages times.
		if w.Size() == 1 {
			return nil
		}
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		for i := 0; i < messages; i++ {
			if err := w.Send(ctx, next, i, payload); err != nil {
				return err
			}
			m, err := w.Recv(ctx, prev, i)
			if err != nil {
				return err
			}
			if len(m.Data) != size {
				return fmt.Errorf("stress: message %d truncated: %d of %d bytes", i, len(m.Data), size)
			}
		}
		return w.Barrier(ctx)
	})
}
