package programs_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridproxy/internal/node"
	"gridproxy/internal/programs"
	"gridproxy/internal/transport"
)

// runProgram launches one registered program as an n-rank world on a
// fresh in-memory network and waits for every rank.
func runProgram(t *testing.T, program string, args []string, n int, hw node.HWProfile) []error {
	t.Helper()
	mem := transport.NewMemNetwork()
	agent := node.New("n0", "s", mem, node.WithHW(hw))
	t.Cleanup(agent.Stop)
	programs.RegisterAll(agent)

	table := make(map[int]string, n)
	for r := 0; r < n; r++ {
		table[r] = agent.EndpointAddr("app", r)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for r := 0; r < n; r++ {
		if _, err := agent.Spawn(ctx, node.SpawnSpec{
			AppID: "app", Program: program, Args: args,
			Rank: r, WorldSize: n, RankTable: table,
		}); err != nil {
			t.Fatalf("spawn rank %d: %v", r, err)
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = agent.Wait(ctx, "app", r)
		}(r)
	}
	wg.Wait()
	return errs
}

func checkAll(t *testing.T, errs []error) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestRegisterAll(t *testing.T) {
	agent := node.New("n0", "s", transport.NewMemNetwork())
	defer agent.Stop()
	programs.RegisterAll(agent)
	got := agent.Programs()
	want := []string{"digest", "pi", "ring", "sleep", "stress"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("programs = %v, want %v", got, want)
	}
}

func TestPiProgram(t *testing.T) {
	// Rank 0 validates the estimate internally; any inaccuracy fails.
	checkAll(t, runProgram(t, "pi", []string{"100000"}, 4, node.DefaultHW))
}

func TestPiProgramBadArgs(t *testing.T) {
	errs := runProgram(t, "pi", []string{"not-a-number"}, 1, node.DefaultHW)
	if errs[0] == nil {
		t.Error("bad steps accepted")
	}
}

func TestRingProgram(t *testing.T) {
	checkAll(t, runProgram(t, "ring", []string{"5"}, 5, node.DefaultHW))
}

func TestRingSingleRank(t *testing.T) {
	checkAll(t, runProgram(t, "ring", nil, 1, node.DefaultHW))
}

func TestSleepProgramScalesWithSpeed(t *testing.T) {
	hwFast := node.HWProfile{Speed: 50, RAMMB: 1024, DiskMB: 1024, RAMPerProcMB: 1}
	start := time.Now()
	checkAll(t, runProgram(t, "sleep", []string{"200ms"}, 2, hwFast))
	// 200ms of reference work at speed 50 → ~4ms; allow generous slack
	// but far below 200ms.
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("sleep did not scale with node speed: %v", elapsed)
	}
}

func TestStressProgram(t *testing.T) {
	checkAll(t, runProgram(t, "stress", []string{"5", "2048"}, 3, node.DefaultHW))
}

func TestStressBadArgs(t *testing.T) {
	errs := runProgram(t, "stress", []string{"x"}, 1, node.DefaultHW)
	if errs[0] == nil {
		t.Error("bad message count accepted")
	}
}
