// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for gridproxy's own analyzers.
//
// The build environment for this repository is hermetic (no module proxy,
// no vendored third-party code), so the canonical analysis framework is
// unavailable; this package keeps its shape — Analyzer, Pass, Diagnostic,
// package facts — on the standard library alone, so the analyzers under
// internal/lint/analyzers read like ordinary go/analysis code and could be
// ported to the upstream framework by changing one import. Two drivers
// consume it: internal/lint/driver (standalone, used by cmd/gridlint) and
// internal/lint/unitchecker (the `go vet -vettool` protocol).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is used as a
	// one-line summary.
	Doc string

	// Run applies the analyzer to one package. It may inspect the
	// package's syntax and types, report diagnostics via pass.Report,
	// and export facts for packages that import this one. The returned
	// value is kept per package and handed to ProgramRun.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the fact types this analyzer exports or imports.
	// Every fact passed to ExportPackageFact/ImportPackageFact must have
	// a type in this list so drivers can serialize them.
	FactTypes []Fact

	// ProgramRun, if non-nil, runs once after Run has completed on every
	// package in the analysis scope. It sees each package's Run result
	// and reports diagnostics that only make sense whole-program (for
	// example "this constant is used nowhere"). Only the standalone
	// driver and analysistest execute ProgramRun; under `go vet
	// -vettool` analysis is strictly per-package and whole-program
	// checks are skipped.
	ProgramRun func(*Program, func(Diagnostic))
}

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers decide rendering and exit
	// status.
	Report func(Diagnostic)

	// facts is wired by the driver.
	importPackageFact func(pkg *types.Package, fact Fact) bool
	exportPackageFact func(fact Fact)
}

// A Program presents every analyzed package to ProgramRun, in dependency
// order (imported packages first).
type Program struct {
	Fset  *token.FileSet
	Units []ProgramUnit
}

// A ProgramUnit pairs one analyzed package with the value its per-package
// Run returned.
type ProgramUnit struct {
	Pkg    *types.Package
	Files  []*ast.File
	Result interface{}
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Fact is an observation about a package, exported during that package's
// pass and importable (by the same analyzer) while analyzing any package
// that depends on it. Implementations must be pointers to gob-encodable
// types: the unitchecker driver serializes facts between `go vet`
// compilation units.
type Fact interface{ AFact() }

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exportPackageFact == nil {
		panic("analysis: ExportPackageFact called outside a driver")
	}
	p.exportPackageFact(fact)
}

// ImportPackageFact copies into fact the fact of fact's type previously
// exported for pkg, reporting whether one was found. pkg must be a direct
// or indirect dependency of the package under analysis.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.importPackageFact == nil {
		panic("analysis: ImportPackageFact called outside a driver")
	}
	return p.importPackageFact(pkg, fact)
}

// SetFactHooks wires the driver's fact store into the pass. It is exported
// for the two driver packages and analysistest, not for analyzers.
func (p *Pass) SetFactHooks(
	importPkg func(pkg *types.Package, fact Fact) bool,
	exportPkg func(fact Fact),
) {
	p.importPackageFact = importPkg
	p.exportPackageFact = exportPkg
}
