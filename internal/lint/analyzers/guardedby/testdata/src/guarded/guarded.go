// Package guarded exercises the guardedby analyzer: inferred and
// annotated guard disciplines with stray unlocked accesses, and the
// shapes that must stay silent — constructors, immutable-after-construct
// fields, externally-synchronized fields, embedded mutexes, *Locked
// helpers, and suppressions.
package guarded

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int
	name string
}

// newCounter is a constructor (returns the struct): initialization
// before the value escapes needs no lock.
func newCounter(name string) *counter {
	c := &counter{}
	c.name = name
	return c
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bumpLocked runs with c.mu held by convention: its access is a locked
// write.
func (c *counter) bumpLocked() {
	c.n++
}

// peek reads n without the lock: the inferred discipline flags it.
func (c *counter) peek() int {
	return c.n // want `counter\.n is guarded by mu`
}

// snapshot documents a deliberate unlocked read.
func (c *counter) snapshot() int {
	//lint:allow-guardedby fixture: only called before the goroutines start
	return c.n
}

// label reads name, which has no locked writes (immutable after
// construction): inference stays silent.
func (c *counter) label() string {
	return c.name
}

type table struct {
	mu   sync.Mutex
	rows map[string]int
}

// set writes through an index expression: that counts as a locked write
// of rows, the map-under-mutex idiom.
func (t *table) set(k string, v int) {
	t.mu.Lock()
	t.rows[k] = v
	t.mu.Unlock()
}

func (t *table) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows[k]
}

// raw leaks the map without the lock.
func (t *table) raw() map[string]int {
	return t.rows // want `table\.rows is guarded by mu`
}

type config struct {
	mu sync.Mutex
	// limit is guarded by mu.
	limit int
}

func (c *config) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// bump would be silent under inference (no locked writes), but the
// annotation forces the discipline.
func (c *config) bump() {
	c.limit++ // want `config\.limit is guarded by mu`
}

type gauge struct {
	mu sync.RWMutex
	v  int
}

// All gauge accesses hold the lock (write or read side): silent.
func (g *gauge) set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

type box struct {
	sync.Mutex
	val int
}

func (b *box) put(v int) {
	b.Lock()
	b.val = v
	b.Unlock()
}

func (b *box) take() int {
	b.Lock()
	defer b.Unlock()
	return b.val
}

// steal skips the embedded mutex.
func (b *box) steal() int {
	return b.val // want `box\.val is guarded by the embedded mutex`
}

type journal struct {
	mu  sync.Mutex
	seq int
}

// journal.seq is mostly accessed without the lock (externally
// synchronized by its single-writer owner): one locked write is not
// enough evidence, so inference stays silent.
func (j *journal) flush() {
	j.mu.Lock()
	j.seq++
	j.mu.Unlock()
}

func (j *journal) a() int { return j.seq }

func (j *journal) b() int { return j.seq }

func (j *journal) c() int { return j.seq }
