package guardedby_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/guardedby"
)

// TestGuardedby checks inferred and annotated guard disciplines —
// including the map-index-write idiom, embedded mutexes, RWMutex read
// sides and the *Locked convention — against the silent shapes:
// constructors, immutable-after-construct fields, externally-synchronized
// fields, and //lint:allow-guardedby.
func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guarded")
}
