// Package guardedby implements the gridlint analyzer that flags reads
// and writes of mutex-guarded struct fields made without the lock — a
// static complement to -race, which only sees interleavings that execute.
//
// For every struct declaring a sync.Mutex/RWMutex field, the analyzer
// classifies each access to the sibling fields as locked (the struct's
// mutex is held at that point, per the shared lock walker, including the
// *Locked naming convention) or unlocked. A field is considered guarded
// when either
//
//   - its declaration carries a `// guarded by <mu>` comment, or
//   - the lock discipline is inferred: at least one locked write, at
//     least two locked accesses, and more locked than unlocked accesses
//     — the field is manipulated under the lock as a rule, so the
//     stragglers are the bug, not the rule.
//
// Unlocked accesses to a guarded field are reported. Constructors
// (functions whose results include the struct type) are exempt — the
// value has not escaped yet — as are test files and composite literals.
// The inference deliberately stays conservative: a field with no locked
// writes (immutable after construction) or mostly-unlocked traffic
// (externally synchronized) is silent unless annotated. Deliberate
// unlocked access — a happens-before edge the analyzer cannot see — is
// suppressed with `//lint:allow-guardedby <why>`.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields of mutex-bearing structs that are guarded (annotated or inferred) must not be read or written without the lock",
	Run:  run,
}

// A mutexField is one lock declared in a struct: a named sync.Mutex/
// RWMutex field, or an embedded one (held key is then the base
// expression itself: x.Lock()).
type mutexField struct {
	name     string
	embedded bool
}

// A structInfo describes one lock-bearing struct of the package.
type structInfo struct {
	obj     *types.TypeName
	mutexes []mutexField
}

// An access is one read or write of a guarded-candidate field.
type access struct {
	pos    token.Pos
	write  bool
	locked bool
}

// A fieldState accumulates accesses to one field across the package.
type fieldState struct {
	owner     *structInfo
	name      string
	annotated bool
	accesses  []access
	// guard is the mutex actually held at the field's locked accesses
	// (first one observed), so the diagnostic names the right lock on
	// structs with more than one.
	guard    mutexField
	guardSet bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // daemons wire things up single-threaded
	}
	idx := lintutil.FuncIndex(pass)

	structs, fields := collectStructs(pass)
	if len(fields) == 0 {
		return nil, nil
	}

	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := idx.Funcs[fd]
			if fn == nil || isConstructor(fn, structs) {
				continue
			}
			writes := writeTargets(fd.Body)
			held0 := lockedOnEntry(pass, fd, fn, structs)
			w := &lintutil.LockWalker{
				Info: pass.TypesInfo,
				OnExpr: func(n ast.Node, held map[string]token.Pos) {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return
					}
					s, ok := pass.TypesInfo.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						return
					}
					obj, ok := s.Obj().(*types.Var)
					if !ok {
						return
					}
					fs, ok := fields[obj]
					if !ok {
						return
					}
					base := types.ExprString(sel.X)
					locked := false
					for _, mf := range fs.owner.mutexes {
						key := base + "." + mf.name
						if mf.embedded {
							key = base
						}
						if _, ok := held[key]; ok {
							locked = true
							if !fs.guardSet {
								fs.guard, fs.guardSet = mf, true
							}
							break
						}
					}
					fs.accesses = append(fs.accesses, access{
						pos:    sel.Sel.Pos(),
						write:  writes[sel],
						locked: locked,
					})
				},
			}
			w.Walk(fd.Body, held0)
		}
	}

	report(pass, fields)
	return nil, nil
}

// collectStructs finds the package's lock-bearing structs and maps each
// non-mutex field object to its accumulator.
func collectStructs(pass *analysis.Pass) (map[*types.TypeName]*structInfo, map[*types.Var]*fieldState) {
	structs := map[*types.TypeName]*structInfo{}
	fields := map[*types.Var]*fieldState{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				info := &structInfo{obj: tn}
				type candidate struct {
					obj       *types.Var
					name      string
					annotated bool
				}
				var candidates []candidate
				for _, f := range st.Fields.List {
					annotated := hasGuardComment(f)
					if len(f.Names) == 0 {
						// Embedded field: a mutex makes the struct
						// lockable; anything else is not a guard target
						// (its own fields belong to its own type).
						if tv, ok := pass.TypesInfo.Types[f.Type]; ok && isMutex(tv.Type) {
							info.mutexes = append(info.mutexes, mutexField{embedded: true})
						}
						continue
					}
					for _, name := range f.Names {
						obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if isMutex(obj.Type()) {
							info.mutexes = append(info.mutexes, mutexField{name: name.Name})
							continue
						}
						candidates = append(candidates, candidate{obj: obj, name: name.Name, annotated: annotated})
					}
				}
				if len(info.mutexes) == 0 {
					continue
				}
				structs[tn] = info
				for _, c := range candidates {
					fields[c.obj] = &fieldState{owner: info, name: c.name, annotated: c.annotated}
				}
			}
		}
	}
	return structs, fields
}

// hasGuardComment reports whether the field declaration carries a
// `guarded by <mu>` annotation in its doc or line comment.
func hasGuardComment(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "guarded by ") {
				return true
			}
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	return lintutil.IsNamedType(t, "sync", "Mutex") || lintutil.IsNamedType(t, "sync", "RWMutex")
}

// isConstructor reports whether fn returns one of the lock-bearing
// structs (by value or pointer): inside it the value has not escaped, so
// unguarded initialization is fine.
func isConstructor(fn *types.Func, structs map[*types.TypeName]*structInfo) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if _, ok := structs[named.Obj()]; ok {
				return true
			}
		}
	}
	return false
}

// lockedOnEntry seeds the held set for *Locked methods: by repo
// convention the caller holds the receiver's lock for their whole extent.
func lockedOnEntry(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func, structs map[*types.TypeName]*structInfo) map[string]token.Pos {
	if !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	info, ok := structs[named.Obj()]
	if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := fd.Recv.List[0].Names[0].Name
	held := map[string]token.Pos{}
	for _, mf := range info.mutexes {
		key := recv + "." + mf.name
		if mf.embedded {
			key = recv
		}
		held[key] = fd.Pos()
	}
	return held
}

// writeTargets collects the selector expressions written in body:
// assignment targets, inc/dec operands, and address-taken fields (the
// pointer may be written through; treating it as a write keeps inference
// honest).
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		e = ast.Unparen(e)
		// An element or pointee write (m[k] = v, *p = v) mutates what
		// the field holds: count it as a write of the field itself, so
		// the map-under-mutex idiom infers correctly.
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = ast.Unparen(x.X)
			case *ast.StarExpr:
				e = ast.Unparen(x.X)
			default:
				if sel, ok := e.(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}

// report applies the guard rule to each field and flags unlocked
// accesses.
func report(pass *analysis.Pass, fields map[*types.Var]*fieldState) {
	ordered := make([]*fieldState, 0, len(fields))
	for _, fs := range fields {
		ordered = append(ordered, fs)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].owner.obj.Name() != ordered[j].owner.obj.Name() {
			return ordered[i].owner.obj.Name() < ordered[j].owner.obj.Name()
		}
		return ordered[i].name < ordered[j].name
	})
	for _, fs := range ordered {
		var lockedN, lockedWrites, unlockedN int
		for _, a := range fs.accesses {
			if a.locked {
				lockedN++
				if a.write {
					lockedWrites++
				}
			} else {
				unlockedN++
			}
		}
		guarded := fs.annotated ||
			(lockedWrites >= 1 && lockedN >= 2 && lockedN > unlockedN)
		if !guarded || unlockedN == 0 {
			continue
		}
		how := "annotated `guarded by`"
		if !fs.annotated {
			how = "inferred from its locked accesses"
		}
		guard := fs.guard
		if !fs.guardSet && len(fs.owner.mutexes) > 0 {
			guard = fs.owner.mutexes[0]
		}
		mu := guard.name
		if guard.embedded {
			mu = "the embedded mutex"
		} else if mu == "" {
			mu = "its mutex"
		}
		for _, a := range fs.accesses {
			if a.locked {
				continue
			}
			if lintutil.Allowed(pass, a.pos, "allow-guardedby") {
				continue
			}
			verb := "read"
			if a.write {
				verb = "written"
			}
			pass.Reportf(a.pos,
				"%s.%s is guarded by %s (%s) but %s here without holding it — a data race -race only catches if the schedule cooperates",
				fs.owner.obj.Name(), fs.name, mu, how, verb)
		}
	}
}
