package analyzers_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/analyzers/goroleak"
	"gridproxy/internal/lint/analyzers/guardedby"
	"gridproxy/internal/lint/analyzers/lockhold"
	"gridproxy/internal/lint/lintutil"
)

// interplaySrc trips lockhold and goroleak in the same function. The
// allow-goroleak directive sits directly above the lockhold finding: a
// suppression must only silence its own analyzer.
const interplaySrc = `package stage

import (
	"os"
	"sync"
)

type box struct {
	mu sync.Mutex
}

func work() {}

func (b *box) both() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:allow-goroleak wrong directive on purpose; must not reach lockhold
	os.Remove("x")
	go b.spin()
}

func (b *box) spin() {
	for {
		work()
	}
}
`

// TestLockholdGoroleakInterplay runs both walkers over one package and
// checks they neither miss their own finding nor eat each other's
// suppressions, and that the shared function index is built once.
func TestLockholdGoroleakInterplay(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stage.go", interplaySrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("stage", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	var got []analysis.Diagnostic
	before := lintutil.IndexBuilds()
	for _, a := range []*analysis.Analyzer{lockhold.Analyzer, goroleak.Analyzer, guardedby.Analyzer} {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     []*ast.File{f},
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	if builds := lintutil.IndexBuilds() - before; builds != 1 {
		t.Errorf("suite built the function index %d times for one package, want 1", builds)
	}

	var lockholdHits, goroleakHits int
	for _, d := range got {
		switch {
		case strings.Contains(d.Message, "held across file I/O"):
			lockholdHits++
		case strings.Contains(d.Message, "no stop signal"):
			goroleakHits++
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if lockholdHits != 1 {
		t.Errorf("lockhold findings = %d, want 1 (an allow-goroleak directive must not silence lockhold)", lockholdHits)
	}
	if goroleakHits != 1 {
		t.Errorf("goroleak findings = %d, want 1", goroleakHits)
	}
}
