// Fixture for a guarded server package: loopy goroutines need a stop
// signal or supervision.
package tunnel

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func work() {}

func (s *server) badAnon() {
	go func() { // want `goroutine runs a loop with no stop signal`
		for {
			work()
		}
	}()
}

func (s *server) badMethod() {
	go s.spin() // want `goroutine runs a loop with no stop signal`
}

func (s *server) spin() {
	for {
		work()
	}
}

func (s *server) goodCtx(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

func (s *server) goodDone() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			default:
			}
			work()
		}
	}()
}

func (s *server) goodRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func (s *server) goodSupervisedOutside() {
	s.wg.Add(1)
	go s.spinSupervised()
}

func (s *server) spinSupervised() {
	defer s.wg.Done()
	for {
		work()
	}
}

func (s *server) goodSupervisedInside() {
	go func() {
		defer s.wg.Done()
		for {
			work()
		}
	}()
}

// one-shot goroutines are not this analyzer's leak shape.
func (s *server) goodOneShot() {
	go work()
	go func() {
		work()
	}()
}

func (s *server) goodAllowed() {
	//lint:allow-leak supervised by connection teardown: Close unblocks
	// the read and the loop exits.
	go s.spin()
}
