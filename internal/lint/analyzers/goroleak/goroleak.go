// Package goroleak implements the gridlint analyzer that flags
// long-running goroutines started with no way to stop them.
//
// In the long-lived server packages (core, peerlink, stage, tunnel) a
// `go` statement that enters a loop must be stoppable: its body should
// watch a context or a done/stop channel (including ranging over a work
// channel, which ends on close), or the launch must be supervised — a
// WaitGroup Add just before the `go`, or a `defer wg.Done()` inside, the
// repo's idiom for goroutines whose shutdown is ordered by Close/Wait. A
// loopy goroutine with neither outlives its owner: every proxy restart
// and every test leaks one more ticker loop. One-shot goroutines (no
// loop) are exempt — parking forever is the caller's bug, not a leak
// shape this analyzer understands. Suppress deliberate daemons with
// `//lint:allow-leak <why>`.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/analyzers/ctxprop"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "long-running goroutines in server packages need a stop signal (context, done channel, or WaitGroup supervision)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !ctxprop.GuardedPackages[pass.Pkg.Name()] {
		return nil, nil
	}

	// The shared per-package index resolves `go r.loop()` to its body;
	// lockorder, guardedby and atomicmix reuse the same table, so the
	// package's declarations are walked once for the whole suite.
	decls := lintutil.FuncIndex(pass).Decls

	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				g, ok := stmt.(*ast.GoStmt)
				if !ok {
					continue
				}
				body := goBody(pass, decls, g)
				if body == nil || !hasLoop(body) || hasStopSignal(pass, body) {
					continue
				}
				if i > 0 && isWaitGroupAdd(pass, block.List[i-1]) {
					continue // supervised: wg.Add(1); go ...
				}
				if hasWaitGroupDone(pass, body) {
					continue // supervised from inside
				}
				if lintutil.Allowed(pass, g.Pos(), "allow-leak") {
					continue
				}
				pass.Reportf(g.Pos(),
					"goroutine runs a loop with no stop signal — no context, no done channel, no WaitGroup supervision; it outlives its owner")
			}
			return true
		})
	}
	return nil, nil
}

// goBody resolves the body the go statement will run: a function literal's
// own body, or the declaration of a same-package function or method.
func goBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := lintutil.Callee(pass.TypesInfo, g.Call); fn != nil {
			if fd, ok := decls[fn]; ok && fd.Body != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasLoop reports whether body contains a for/range statement outside
// nested function literals — the signature of a long-running goroutine.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasStopSignal reports whether body can learn that it should exit: it
// references a context, receives from a channel (a done/stop channel, or
// a work channel whose close ends a range), or selects.
func hasStopSignal(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if lintutil.IsNamedType(obj.Type(), "context", "Context") {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupAdd matches `wg.Add(n)` (receiver sync.WaitGroup).
func isWaitGroupAdd(pass *analysis.Pass, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := lintutil.Callee(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Add" && lintutil.PkgPath(fn) == "sync" &&
		recvIsWaitGroup(fn)
}

// hasWaitGroupDone matches a `defer wg.Done()` inside body.
func hasWaitGroupDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if fn := lintutil.Callee(pass.TypesInfo, def.Call); fn != nil {
			if fn.Name() == "Done" && lintutil.PkgPath(fn) == "sync" && recvIsWaitGroup(fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

func recvIsWaitGroup(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lintutil.IsNamedType(sig.Recv().Type(), "sync", "WaitGroup")
}
