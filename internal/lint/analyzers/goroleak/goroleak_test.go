package goroleak_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/goroleak"
)

// TestGoroleak checks that unstoppable loopy goroutines are flagged —
// both function literals and locally declared methods — while every
// sanctioned shape is not: context checks, done channels, ranging over a
// work channel, WaitGroup supervision from either side, one-shot
// goroutines, and //lint:allow-leak annotations.
func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "tunnel")
}
