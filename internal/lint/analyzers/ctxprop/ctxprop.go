// Package ctxprop implements the gridlint analyzer that forbids minting
// fresh root contexts on handler, RPC and transfer paths.
//
// The invariant (DESIGN §14.3): inside the long-lived server packages —
// core, peerlink, stage, tunnel — context must be threaded from the
// caller, ultimately from an RPC lifetime or the proxy's run context, so
// that shutdown and peer death cancel in-flight work. A
// context.Background() (or TODO()) on such a path detaches the work from
// every deadline and cancellation above it; PR 1 fixed exactly this bug
// by deriving handler contexts from the rpc lifetime, and this analyzer
// keeps it fixed. Genuine roots (a daemon's run loop) are annotated
// `//lint:allow-background <why>`; main packages and tests are exempt by
// construction.
package ctxprop

import (
	"go/ast"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the ctxprop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc:  "forbid context.Background/TODO on handler, RPC and transfer paths; context must flow from the caller",
	Run:  run,
}

// GuardedPackages names the packages (by package name) whose code paths
// must thread contexts. Shared with goroleak and lockhold: these are the
// long-lived server packages where a detached or blocked path outlives
// requests.
var GuardedPackages = map[string]bool{
	"core":       true,
	"gate":       true,
	"membership": true,
	"peerlink":   true,
	"stage":      true,
	"tunnel":     true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !GuardedPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || lintutil.PkgPath(fn) != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if lintutil.Allowed(pass, call.Pos(), "allow-background") {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s on a %s path: thread the caller's context so shutdown and peer death cancel this work (annotate //lint:allow-background <why> for a true root)",
				fn.Name(), pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}
