// Fixture for a package outside the guarded set: free to mint roots.
package other

import "context"

func anything() {
	ctx := context.Background()
	_ = ctx
}
