// Fixture for a guarded server package (identified by package name):
// fresh root contexts are forbidden unless annotated.
package core

import "context"

func handle() {
	ctx := context.Background() // want `context\.Background on a core path`
	_ = ctx
	todo := context.TODO() // want `context\.TODO on a core path`
	_ = todo
}

// threaded contexts are the norm and are always fine.
func threaded(ctx context.Context) context.Context {
	return context.WithValue(ctx, key{}, "v")
}

type key struct{}

// run is a genuine lifecycle root; the doc-comment annotation suppresses
// the diagnostic for the whole function.
//
//lint:allow-background this daemon owns its lifecycle root
func run() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}

func inlineAnnotated() {
	//lint:allow-background justified root: cancellation comes from Close,
	// not from a caller. A multi-line justification still counts.
	ctx := context.Background()
	_ = ctx
}
