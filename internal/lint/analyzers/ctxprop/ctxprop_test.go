package ctxprop_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/ctxprop"
)

// TestCtxprop checks that fresh roots are flagged in guarded packages,
// that //lint:allow-background suppresses them (doc-comment and inline
// forms), and that packages outside the guarded set are exempt.
func TestCtxprop(t *testing.T) {
	analysistest.Run(t, "testdata", ctxprop.Analyzer, "core", "other")
}
