// Package analyzers aggregates gridproxy's analyzer suite. cmd/gridlint,
// the CI gate, and the analyzer tests all consume this one list, so a new
// analyzer added here is enforced everywhere at once.
package analyzers

import (
	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/analyzers/atomicmix"
	"gridproxy/internal/lint/analyzers/clockinject"
	"gridproxy/internal/lint/analyzers/ctxprop"
	"gridproxy/internal/lint/analyzers/goroleak"
	"gridproxy/internal/lint/analyzers/guardedby"
	"gridproxy/internal/lint/analyzers/lockhold"
	"gridproxy/internal/lint/analyzers/lockorder"
	"gridproxy/internal/lint/analyzers/metricnames"
	"gridproxy/internal/lint/analyzers/protoreg"
)

// Suite returns every gridlint analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		protoreg.Analyzer,
		metricnames.Analyzer,
		ctxprop.Analyzer,
		lockhold.Analyzer,
		goroleak.Analyzer,
		lockorder.Analyzer,
		guardedby.Analyzer,
		clockinject.Analyzer,
		atomicmix.Analyzer,
	}
}
