package clockinject_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/clockinject"
)

// TestClockinject checks that direct time.Now/Since/NewTimer calls are
// flagged inside clock-injected packages, while the default-wiring
// function value, annotated wall-clock sites, unlisted time functions,
// and unguarded packages stay silent.
func TestClockinject(t *testing.T) {
	analysistest.Run(t, "testdata", clockinject.Analyzer, "gate", "other")
}
