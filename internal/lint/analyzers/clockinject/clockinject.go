// Package clockinject implements the gridlint analyzer that keeps
// wall-clock reads out of the packages that plumb an injected clock.
//
// gate, core, ticket, membership and site all take a `func() time.Time`
// (or a Clock config field) precisely so tests can drive expiry, sweeps
// and suspicion timers deterministically; PR 7 showed the subtlest
// control-plane bugs are clock discipline. A stray `time.Now()` in such
// a package silently splits time in two: half the logic follows the fake
// clock, half the wall, and the test that would have caught an eviction
// bug can no longer reach it (the gate pool's idle sweep was exactly
// this). The analyzer flags *calls* to time.Now, time.Since and
// time.NewTimer in those packages. Referencing `time.Now` as a value —
// the `if clock == nil { clock = time.Now }` default wiring — is the
// sanctioned pattern and stays legal, as do tests. Genuine wall-clock
// uses (monotonic elapsed-time metrics, real-I/O timers the fake clock
// cannot drive, nonce seeding) are annotated
// `//lint:allow-wallclock <why>` — on the line, the comment block above,
// or the enclosing function's doc comment.
package clockinject

import (
	"go/ast"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the clockinject analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockinject",
	Doc:  "no direct time.Now/time.Since/time.NewTimer calls in clock-injected packages; use the injected clock",
	Run:  run,
}

// ClockedPackages names the packages (by package name) that plumb an
// injected clock and must use it.
var ClockedPackages = map[string]bool{
	"core":       true,
	"gate":       true,
	"membership": true,
	"site":       true,
	"ticket":     true,
}

// wallClockFuncs are the forbidden direct reads of the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":      true,
	"Since":    true,
	"NewTimer": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !ClockedPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || lintutil.PkgPath(fn) != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if lintutil.Allowed(pass, call.Pos(), "allow-wallclock") {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in clock-injected package %s: use the injected clock so tests can drive this path (annotate //lint:allow-wallclock <why> for genuine wall-clock uses)",
				fn.Name(), pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}
