// Package other is not clock-injected: wall-clock calls are its own
// business.
package other

import "time"

func Stamp() time.Time {
	return time.Now()
}
