// Package gate exercises the clockinject analyzer inside a guarded
// package name: direct wall-clock calls are flagged, the default-wiring
// function value and annotated sites are not.
package gate

import "time"

type sweeper struct {
	clock func() time.Time
	last  time.Time
}

// newSweeper shows the sanctioned default wiring: time.Now referenced as
// a value, not called.
func newSweeper(clock func() time.Time) *sweeper {
	if clock == nil {
		clock = time.Now
	}
	return &sweeper{clock: clock}
}

func (s *sweeper) touch() {
	s.last = time.Now() // want `time\.Now in clock-injected package gate`
}

func (s *sweeper) idleFor() time.Duration {
	return time.Since(s.last) // want `time\.Since in clock-injected package gate`
}

func (s *sweeper) wait() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer in clock-injected package gate`
}

func (s *sweeper) touchInjected() {
	s.last = s.clock()
}

// elapsed documents a genuine wall-clock use.
func (s *sweeper) elapsed() time.Duration {
	//lint:allow-wallclock fixture: monotonic elapsed measurement
	start := time.Now()
	//lint:allow-wallclock fixture: monotonic elapsed measurement
	return time.Since(start)
}

//lint:allow-wallclock fixture: whole function is a wall-clock boundary
func (s *sweeper) boundary() time.Time {
	return time.Now()
}

// Sleeping and tickers are not in scope: only Now/Since/NewTimer split
// logical time.
func (s *sweeper) tick() *time.Ticker {
	return time.NewTicker(time.Second)
}
