package protoreg_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/protoreg"
)

// TestProtoreg exercises all five registry checks on a fixture modelled
// on internal/proto: unregistered core codes, factory/Code() mismatches,
// unregistered Body implementers, dead dispatch arms in an importing
// package, and the whole-program dead-code check. The fixture's
// extension codes (at or above ExtensionBase) are registered with a
// mismatched factory, or not registered and never dispatched — and must
// produce no diagnostics.
func TestProtoreg(t *testing.T) {
	analysistest.Run(t, "testdata", protoreg.Analyzer, "protouser")
}
