// Package protoreg implements the gridlint analyzer that keeps the
// expandable control protocol's code registry sound.
//
// The paper's protocol (DESIGN §3) is code-based and open: every message
// is a (Code, Corr, Payload) triple, and proto.Unmarshal can only produce
// bodies whose code has a registered decode factory. The compiler cannot
// see the registry, so four conventions are enforced here instead:
//
//  1. every core Code constant (below ExtensionBase, except CodeInvalid)
//     has a registered factory — an unregistered code is a message that
//     can be sent but never decoded;
//  2. a registration's factory returns a body whose Code() method names
//     the same constant — a copy-paste mismatch here silently routes one
//     message type onto another's wire code;
//  3. every type implementing proto.Body is registered — an unregistered
//     body is a message type that can never arrive;
//  4. dispatch arms (`case *proto.T:` over a proto.Body, and type
//     assertions on one) name registered bodies — an arm for an
//     unregistered body is dead, Unmarshal never produces it.
//
// Whole-program (standalone gridlint only), a fifth check flags dead
// protocol codes: registered bodies that no package in scope dispatches
// or constructs. Extension codes at or above proto.ExtensionBase are the
// protocol's sanctioned expansion surface and are exempt from all checks.
package protoreg

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the protoreg analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "protoreg",
	Doc:        "every core proto.Code must have a registered factory, a consistent Code() method, and a live dispatch arm",
	Run:        run,
	ProgramRun: programRun,
	FactTypes:  []analysis.Fact{(*RegisteredBodies)(nil)},
}

// RegisteredBodies is the package fact the proto package exports: which
// body types have a registered decode factory, and under which code
// constant. Importing packages use it to validate dispatch arms.
type RegisteredBodies struct {
	// Bodies maps body type name to the registered code constant name.
	Bodies map[string]string
}

// AFact marks RegisteredBodies as a fact type.
func (*RegisteredBodies) AFact() {}

// registration records one Register/registerCore call.
type registration struct {
	code string // code constant name
	body string // body type name ("" if the factory shape was opaque)
	pos  token.Pos
}

// result feeds the whole-program dead-code check.
type result struct {
	isProto   bool
	protoPath string               // importers: path of the proto package seen
	codes     map[string]token.Pos // proto: code constant declarations
	regs      []registration       // proto: registrations
	alive     map[string]bool      // body types dispatched, asserted or constructed here
}

func run(pass *analysis.Pass) (interface{}, error) {
	if isProtoPackage(pass.Pkg) {
		return runProto(pass)
	}
	return runImporter(pass)
}

// runProto checks the registry inside the proto package itself.
func runProto(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Pkg.Scope()
	codeObj, _ := scope.Lookup("Code").(*types.TypeName)
	extObj, _ := scope.Lookup("ExtensionBase").(*types.Const)
	bodyObj, _ := scope.Lookup("Body").(*types.TypeName)
	if codeObj == nil || extObj == nil {
		return &result{}, nil
	}
	extBase, _ := constant.Int64Val(extObj.Val())

	res := &result{isProto: true, codes: map[string]token.Pos{}, alive: map[string]bool{}}

	// Core code constants: typed Code, below ExtensionBase, nonzero.
	// Constants at or above ExtensionBase are extension codes, the
	// protocol's sanctioned expansion surface: exempt from every check.
	coreCodes := map[string]token.Pos{}
	extCodes := map[string]bool{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c == extObj || !types.Identical(c.Type(), codeObj.Type()) {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		res.codes[name] = c.Pos()
		if v > 0 && v < extBase {
			coreCodes[name] = c.Pos()
		} else if v >= extBase {
			extCodes[name] = true
		}
	}

	// Registrations and each body's Code() return value.
	regs := collectRegistrations(pass, pass.Pkg)
	returns := collectCodeReturns(pass)
	registered := map[string]string{} // body -> code
	registeredCodes := map[string]bool{}
	for _, r := range regs {
		registeredCodes[r.code] = true
		if r.body != "" {
			registered[r.body] = r.code
		}
		if !extCodes[r.code] {
			res.regs = append(res.regs, r)
		}
	}

	// Check 1: unregistered core codes.
	names := make([]string, 0, len(coreCodes))
	for name := range coreCodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !registeredCodes[name] {
			pass.Reportf(coreCodes[name],
				"proto code %s has no registered decode factory — messages carrying it can be sent but never decoded", name)
		}
	}

	// Check 2: factory/Code() mismatches. Extension registrations are
	// exempt: their factories live outside the core registry's contract.
	for _, r := range regs {
		if r.body == "" || extCodes[r.code] {
			continue
		}
		if ret, ok := returns[r.body]; ok && ret != r.code {
			pass.Reportf(r.pos,
				"factory for %s returns *%s, whose Code() method returns %s — the registration and the body disagree",
				r.code, r.body, ret)
		}
	}

	// Check 3: body types never registered.
	if bodyObj != nil {
		iface, _ := bodyObj.Type().Underlying().(*types.Interface)
		if iface != nil {
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn == bodyObj || tn.IsAlias() {
					continue
				}
				if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
					continue
				}
				if !types.Implements(types.NewPointer(tn.Type()), iface) {
					continue
				}
				if extCodes[returns[name]] {
					continue // extension body: registered by its extension
				}
				if _, ok := registered[name]; !ok {
					pass.Reportf(tn.Pos(),
						"message body type %s implements Body but is never registered — it can never arrive from the wire", name)
				}
			}
		}
	}

	// A composite literal inside a registration's factory does not make a
	// body alive — every factory constructs its body by definition, so
	// counting them would blind the whole-program dead-code check.
	collectConstructed(pass, pass.Pkg, res.alive, factorySpans(pass, pass.Pkg))
	pass.ExportPackageFact(&RegisteredBodies{Bodies: registered})
	return res, nil
}

// runImporter validates dispatch arms in packages that use the protocol.
func runImporter(pass *analysis.Pass) (interface{}, error) {
	var protoPkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if isProtoPackage(imp) {
			protoPkg = imp
			break
		}
	}
	if protoPkg == nil {
		return nil, nil
	}
	res := &result{protoPath: protoPkg.Path(), alive: map[string]bool{}}
	var fact RegisteredBodies
	haveFact := pass.ImportPackageFact(protoPkg, &fact)
	bodyObj, _ := protoPkg.Scope().Lookup("Body").(*types.TypeName)

	checkArm := func(te ast.Expr) {
		t := pass.TypesInfo.Types[te].Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != protoPkg {
			return
		}
		name := named.Obj().Name()
		res.alive[name] = true
		if haveFact && fact.Bodies[name] == "" && !lintutil.InTestFile(pass, te.Pos()) {
			pass.Reportf(te.Pos(),
				"dispatch arm for %s.%s, which has no registered decode factory — Unmarshal can never produce it, so this arm is dead",
				protoPkg.Name(), name)
		}
	}

	isBody := func(e ast.Expr) bool {
		if bodyObj == nil {
			return false
		}
		t := pass.TypesInfo.Types[e].Type
		named, ok := t.(*types.Named)
		return ok && named.Obj() == bodyObj
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				var operand ast.Expr
				switch assign := n.Assign.(type) {
				case *ast.ExprStmt:
					if ta, ok := assign.X.(*ast.TypeAssertExpr); ok {
						operand = ta.X
					}
				case *ast.AssignStmt:
					if ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr); ok {
						operand = ta.X
					}
				}
				if operand == nil || !isBody(operand) {
					return true
				}
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					for _, te := range cc.List {
						checkArm(te)
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil && isBody(n.X) {
					checkArm(n.Type)
				}
			}
			return true
		})
	}
	collectConstructed(pass, protoPkg, res.alive, nil)
	return res, nil
}

// programRun flags registered codes no package in scope dispatches or
// constructs — dead protocol surface.
func programRun(prog *analysis.Program, report func(analysis.Diagnostic)) {
	var proto *result
	alive := map[string]bool{}
	consumers := false
	for _, u := range prog.Units {
		r, ok := u.Result.(*result)
		if !ok || r == nil {
			continue
		}
		if r.isProto {
			proto = r
		} else {
			consumers = true
		}
		for name := range r.alive {
			alive[name] = true
		}
	}
	if proto == nil || !consumers {
		return // partial scope: no consumer information to judge by
	}
	for _, r := range proto.regs {
		if r.body == "" || alive[r.body] {
			continue
		}
		pos := proto.codes[r.code]
		if !pos.IsValid() {
			pos = r.pos
		}
		report(analysis.Diagnostic{
			Pos: pos,
			Message: "protocol code " + r.code + " (body " + r.body +
				") is registered but never dispatched or constructed anywhere in scope — dead protocol code",
		})
	}
}

// collectRegistrations finds Register/registerCore calls to regPkg's
// functions and decodes their (code constant, body type) arguments.
func collectRegistrations(pass *analysis.Pass, regPkg *types.Package) []registration {
	var regs []registration
	for _, file := range pass.Files {
		// Tests register deliberately broken bodies (duplicate codes,
		// mismatched factories) to exercise the registry's own checks;
		// only production registrations feed the invariant.
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() != regPkg {
				return true
			}
			if fn.Name() != "Register" && fn.Name() != "registerCore" {
				return true
			}
			var codeName string
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && c.Pkg() == regPkg {
					codeName = c.Name()
				}
			}
			if codeName == "" {
				return true // extension registering its own constant, or computed
			}
			regs = append(regs, registration{
				code: codeName,
				body: factoryBodyType(call.Args[1]),
				pos:  call.Pos(),
			})
			return true
		})
	}
	return regs
}

// factoryBodyType extracts T from `func() Body { return &T{} }`, or "".
func factoryBodyType(arg ast.Expr) string {
	lit, ok := ast.Unparen(arg).(*ast.FuncLit)
	if !ok || len(lit.Body.List) != 1 {
		return ""
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	unary, ok := ast.Unparen(ret.Results[0]).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return ""
	}
	comp, ok := unary.X.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	if id, ok := comp.Type.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectCodeReturns maps each body type name to the constant its Code()
// method returns.
func collectCodeReturns(pass *analysis.Pass) map[string]string {
	returns := map[string]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Code" || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0].Type
			if star, ok := recv.(*ast.StarExpr); ok {
				recv = star.X
			}
			id, ok := recv.(*ast.Ident)
			if !ok || len(fd.Body.List) != 1 {
				continue
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			if rid, ok := ast.Unparen(ret.Results[0]).(*ast.Ident); ok {
				if c, ok := pass.TypesInfo.Uses[rid].(*types.Const); ok {
					returns[id.Name] = c.Name()
				}
			}
		}
	}
	return returns
}

// span is a half-open position range [from, to] used to exclude factory
// literals from liveness collection.
type span struct{ from, to token.Pos }

// factorySpans returns the source ranges of every registration's factory
// argument.
func factorySpans(pass *analysis.Pass, regPkg *types.Package) []span {
	var spans []span
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() != regPkg {
				return true
			}
			if fn.Name() == "Register" || fn.Name() == "registerCore" {
				spans = append(spans, span{call.Args[1].Pos(), call.Args[1].End()})
			}
			return true
		})
	}
	return spans
}

// collectConstructed records composite literals of protoPkg body types,
// skipping literals inside the given spans.
func collectConstructed(pass *analysis.Pass, protoPkg *types.Package, alive map[string]bool, skip []span) {
	inSkip := func(pos token.Pos) bool {
		for _, s := range skip {
			if s.from <= pos && pos < s.to {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || inSkip(lit.Pos()) {
				return true
			}
			t := pass.TypesInfo.Types[lit].Type
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == protoPkg.Path() {
				alive[named.Obj().Name()] = true
			}
			return true
		})
	}
}

// isProtoPackage identifies the protocol package structurally: named
// "proto", declaring a Code type and the ExtensionBase constant. Fixture
// packages in analyzer tests qualify exactly like internal/proto.
func isProtoPackage(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "proto" {
		return false
	}
	_, hasCode := pkg.Scope().Lookup("Code").(*types.TypeName)
	_, hasBase := pkg.Scope().Lookup("ExtensionBase").(*types.Const)
	return hasCode && hasBase
}
