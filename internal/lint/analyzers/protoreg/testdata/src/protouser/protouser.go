// Fixture consumer of the proto registry: its dispatch arms are checked
// against the RegisteredBodies fact exported by the proto fixture.
package protouser

import "proto"

// Dispatch routes a decoded body. The Hello arm is live; the Never arm
// can never fire because Unmarshal has no factory producing a *Never.
func Dispatch(b proto.Body) {
	switch m := b.(type) {
	case *proto.Hello:
		_ = m
	case *proto.Never: // want `dispatch arm for proto\.Never, which has no registered decode factory`
		_ = m
	}
}
