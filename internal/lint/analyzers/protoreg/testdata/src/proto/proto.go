// Fixture modelled on internal/proto: a code-based registry with an
// extension surface. protoreg identifies it structurally (package proto,
// Code type, ExtensionBase constant).
package proto

type Code uint16

// ExtensionBase is where site-local extension codes start.
const ExtensionBase Code = 0x1000

const (
	CodeInvalid Code = iota
	CodeHello
	CodeOrphan // want `proto code CodeOrphan has no registered decode factory`
	CodeMismatch
	CodeDead // want `protocol code CodeDead \(body Dead\) is registered but never dispatched or constructed`
)

// Extension codes: the sanctioned expansion surface, exempt from every
// registry check — registered or not, dispatched or not.
const (
	CodeExt      Code = ExtensionBase + 1
	CodeExtLocal Code = ExtensionBase + 2
)

// Body is the message-body contract.
type Body interface {
	Code() Code
}

var registry = map[Code]func() Body{}

// Register installs a decode factory for a code.
func Register(c Code, f func() Body) { registry[c] = f }

type Hello struct{}

func (*Hello) Code() Code { return CodeHello }

// Mismatch implements Body, but its registration's factory returns the
// wrong type, so no registration actually covers it.
type Mismatch struct{} // want `message body type Mismatch implements Body but is never registered`

func (*Mismatch) Code() Code { return CodeMismatch }

type Dead struct{}

func (*Dead) Code() Code { return CodeDead }

// Never implements Body and nothing registers it at all.
type Never struct{} // want `message body type Never implements Body but is never registered`

func (*Never) Code() Code { return CodeInvalid }

// Ext is a registered extension body that is never dispatched; ExtLocal
// is an extension body with no registration in this program at all (an
// extension package would register it at runtime). Neither may be
// flagged.
type Ext struct{}

func (*Ext) Code() Code { return CodeExt }

type ExtLocal struct{}

func (*ExtLocal) Code() Code { return CodeExtLocal }

func init() {
	Register(CodeHello, func() Body { return &Hello{} })
	Register(CodeMismatch, func() Body { return &Hello{} }) // want `the registration and the body disagree`
	Register(CodeDead, func() Body { return &Dead{} })
	// A deliberately sloppy extension registration: wrong factory type,
	// never dispatched. Extensions are exempt, so nothing is reported.
	Register(CodeExt, func() Body { return &Hello{} })
}
