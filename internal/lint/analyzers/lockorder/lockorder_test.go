package lockorder_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/lockorder"
)

// TestLockorder checks direct, call-transitive and read-lock cycles, and
// the silent shapes: consistent orders, two instances of one type (the
// dropped self-edge), sequential locking, and //lint:allow-lockorder.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "deadlock")
}

// TestLockorderCrossPackage checks that summaries compose across the
// import graph: a cycle between a user package's mutex and an imported
// type's embedded mutex, plus a transitive edge through an exported
// method that must not double-report.
func TestLockorderCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockxuser")
}
