// Package lockorder implements the gridlint analyzer that detects
// lock-acquisition cycles — the static deadlock check.
//
// Every sync.Mutex/RWMutex acquisition is abstracted to a type-level
// lock: `s.mu.Lock()` on a *tunnel.Session is the lock
// `internal/tunnel.Session.mu`, a package-level mutex is
// `internal/foo.reglock`. The per-package pass walks each function with
// the shared lock walker, recording (a) which locks it acquires, with the
// set held at that moment, and (b) which functions it calls, with the set
// held at the call site. ProgramRun assembles those summaries into the
// whole-program picture: the locks each function may transitively
// acquire, then the directed graph "lock A is held while lock B is
// acquired" — directly, or anywhere down the call chain. A cycle in that
// graph is a deadlock waiting for the right interleaving: goroutine one
// holds A wanting B, goroutine two holds B wanting A, and -race sees
// nothing because the schedule never bit in a test.
//
// Two abstractions keep the check sound but finite. RLock counts as Lock:
// a pending writer blocks new readers, so read-lock cycles deadlock too.
// Self-edges (T.mu held while another T.mu is taken) are dropped — the
// analysis cannot tell two instances apart, and the repo's per-instance
// locks (session shards, pool entries) would otherwise all be false
// cycles; instance-order deadlocks need a runtime detector.
//
// The check needs the whole program, so it reports only under the
// standalone driver, like the other whole-program checks. A cycle that is
// provably unreachable (the two orders are mutually exclusive by
// construction) is broken by annotating one acquisition with
// `//lint:allow-lockorder <why>`, which removes that acquisition's edges.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "no cycles in the cross-package lock-acquisition order (static deadlock detection; whole-program, standalone driver only)",
	Run:        run,
	ProgramRun: programRun,
}

// An acquireEvent is one lock acquisition: the canonical lock taken, the
// canonical locks already held, and where.
type acquireEvent struct {
	lock string
	held []string
	pos  token.Pos
}

// A callEvent is one static call: who, with which canonical locks held,
// and where. Calls with nothing held still matter — they carry transitive
// acquisitions up to callers that do hold locks.
type callEvent struct {
	callee string
	held   []string
	pos    token.Pos
}

// A funcSummary is one function's lock behavior, keyed by the function's
// full name so summaries compose across packages.
type funcSummary struct {
	name     string
	acquires []acquireEvent
	calls    []callEvent
}

// result is the per-package Run result consumed by ProgramRun.
type result struct {
	funcs []*funcSummary
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := lintutil.FuncIndex(pass)
	res := &result{}
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := idx.Funcs[fd]
			if fn == nil {
				continue
			}
			sum := &funcSummary{name: fn.FullName()}
			canon := map[string]string{} // held-key (source text) -> canonical lock
			w := &lintutil.LockWalker{
				Info: pass.TypesInfo,
				OnAcquire: func(call *ast.CallExpr, key string, held map[string]token.Pos) {
					lock := canonicalLock(pass, fn, call)
					canon[key] = lock
					if lintutil.Allowed(pass, call.Pos(), "allow-lockorder") {
						return // annotated: this acquisition contributes no edges
					}
					sum.acquires = append(sum.acquires, acquireEvent{
						lock: lock,
						held: canonicalHeld(canon, held),
						pos:  call.Pos(),
					})
				},
				OnExpr: func(n ast.Node, held map[string]token.Pos) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					callee := lintutil.Callee(pass.TypesInfo, call)
					if callee == nil || callee.Pkg() == nil || lintutil.PkgPath(callee) == "sync" {
						return
					}
					sum.calls = append(sum.calls, callEvent{
						callee: callee.FullName(),
						held:   canonicalHeld(canon, held),
						pos:    call.Pos(),
					})
				},
			}
			w.Walk(fd.Body, nil)
			res.funcs = append(res.funcs, sum)
		}
	}
	return res, nil
}

// canonicalHeld translates the walker's source-text held set into sorted
// canonical lock names. Keys acquired outside this function's view (none,
// by construction) are dropped.
func canonicalHeld(canon map[string]string, held map[string]token.Pos) []string {
	var out []string
	for k := range held {
		if c, ok := canon[k]; ok {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// canonicalLock names the lock a Lock/RLock call acquires at the type
// level: "<pkg>.<Type>.<field>" for a struct's mutex field (all instances
// of the type share the name), "<pkg>.<var>" for a package-level mutex,
// and a function-scoped name for locals.
func canonicalLock(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr) // guaranteed by LockOp
	mutex := ast.Unparen(sel.X)

	switch m := mutex.(type) {
	case *ast.SelectorExpr:
		// base.field — the common shape. Resolve the field selection to
		// its receiver type.
		if s, ok := pass.TypesInfo.Selections[m]; ok && s.Kind() == types.FieldVal {
			if named := namedOf(s.Recv()); named != nil {
				return typeName(named) + "." + m.Sel.Name
			}
		}
		// Package-qualified var: otherpkg.mu.
		if obj, ok := pass.TypesInfo.Uses[m.Sel].(*types.Var); ok && isPackageLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		// Bare identifier: either `mu.Lock()` on a var, or `x.Lock()`
		// through an embedded mutex (the method selection sees through
		// the embedding; the receiver type names the lock).
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if named := namedOf(s.Recv()); named != nil {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return typeName(named) + ".(embedded)"
				}
			}
		}
		if obj, ok := pass.TypesInfo.Uses[m].(*types.Var); ok {
			if isPackageLevel(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			if named := namedOf(obj.Type()); named != nil {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					// A local of a lock-bearing struct type: name it by type.
					return typeName(named) + ".(embedded)"
				}
			}
			return fn.FullName() + ":" + obj.Name()
		}
	}
	return fn.FullName() + ":" + types.ExprString(mutex)
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// edge is one "from held while to acquired" observation, kept with the
// earliest witness position and, for indirect edges, the callee whose
// transitive acquisition closed it.
type edge struct {
	from, to string
	pos      token.Pos
	via      string
}

func programRun(prog *analysis.Program, report func(analysis.Diagnostic)) {
	funcs := map[string]*funcSummary{}
	for _, u := range prog.Units {
		r, ok := u.Result.(*result)
		if !ok || r == nil {
			continue
		}
		for _, f := range r.funcs {
			funcs[f.name] = f
		}
	}
	if len(funcs) == 0 {
		return
	}

	// Transitive acquisitions: the locks a call to f may take, directly
	// or through anything it calls. Plain fixpoint iteration; the graph
	// is small (one node per function) and cycles converge.
	trans := map[string]map[string]bool{}
	for name, f := range funcs {
		set := map[string]bool{}
		for _, a := range f.acquires {
			set[a.lock] = true
		}
		trans[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, f := range funcs {
			set := trans[name]
			for _, c := range f.calls {
				for lock := range trans[c.callee] {
					if !set[lock] {
						set[lock] = true
						changed = true
					}
				}
			}
		}
	}

	// The lock graph: from-lock held while to-lock acquired.
	edges := map[[2]string]*edge{}
	add := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return // same type-level lock: instances are indistinguishable
		}
		key := [2]string{from, to}
		if e, ok := edges[key]; !ok || pos < e.pos {
			edges[key] = &edge{from: from, to: to, pos: pos, via: via}
		}
	}
	for _, f := range funcs {
		for _, a := range f.acquires {
			for _, h := range a.held {
				add(h, a.lock, a.pos, "")
			}
		}
		for _, c := range f.calls {
			if len(c.held) == 0 {
				continue
			}
			for lock := range trans[c.callee] {
				for _, h := range c.held {
					add(h, lock, c.pos, c.callee)
				}
			}
		}
	}

	adj := map[string][]string{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, ns := range adj {
		sort.Strings(ns)
	}

	for _, cycle := range findCycles(adj) {
		// Describe the cycle edge by edge, witnessing each hop.
		var hops []string
		var pos token.Pos
		for i := range cycle {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := edges[[2]string{from, to}]
			if pos == token.NoPos || e.pos < pos {
				pos = e.pos
			}
			hop := fmt.Sprintf("%s taken at %s while %s held", short(to), position(prog.Fset, e.pos), short(from))
			if e.via != "" {
				hop += " (via " + e.via + ")"
			}
			hops = append(hops, hop)
		}
		report(analysis.Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("lock-order cycle %s → %s: %s — impose one acquisition order or annotate an unreachable order //lint:allow-lockorder <why>",
				strings.Join(shortAll(cycle), " → "), short(cycle[0]), strings.Join(hops, "; ")),
		})
	}
}

// findCycles returns every elementary cycle's node list, one per strongly
// connected component of two or more locks, deterministically ordered.
// One representative cycle per SCC keeps a tangled component from
// producing a diagnostic explosion: fix the order, re-run, repeat.
func findCycles(adj map[string][]string) [][]string {
	sccs := tarjan(adj)
	var cycles [][]string
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		sort.Strings(scc)
		start := scc[0]
		// A cycle through start exists inside the SCC by definition;
		// recover one by DFS restricted to SCC members.
		path := []string{start}
		seen := map[string]bool{start: true}
		var dfs func(n string) []string
		dfs = func(n string) []string {
			for _, next := range adj[n] {
				if !in[next] {
					continue
				}
				if next == start {
					out := make([]string, len(path))
					copy(out, path)
					return out
				}
				if seen[next] {
					continue
				}
				seen[next] = true
				path = append(path, next)
				if c := dfs(next); c != nil {
					return c
				}
				path = path[:len(path)-1]
			}
			return nil
		}
		if c := dfs(start); c != nil {
			cycles = append(cycles, c)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	return cycles
}

// tarjan computes strongly connected components of the lock graph.
func tarjan(adj map[string][]string) [][]string {
	var nodes []string
	seen := map[string]bool{}
	for n, outs := range adj {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, m := range outs {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return sccs
}

// short trims the module prefix from a lock name for readable messages.
func short(lock string) string {
	if i := strings.LastIndex(lock, "/"); i >= 0 {
		return lock[i+1:]
	}
	return lock
}

func shortAll(locks []string) []string {
	out := make([]string, len(locks))
	for i, l := range locks {
		out[i] = short(l)
	}
	return out
}

func position(fset *token.FileSet, pos token.Pos) string {
	if !pos.IsValid() {
		return "-"
	}
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", trimPath(p.Filename), p.Line)
}

// trimPath keeps the last two path elements — package dir and file — so
// messages stay readable and fixture-stable.
func trimPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
