// Package lockx is the imported half of the cross-package lockorder
// fixture: it exports a type with an embedded (and therefore lockable
// from outside) mutex.
package lockx

import "sync"

type X struct {
	sync.Mutex
	N int
}

// Bump is a well-behaved exported method: lock, mutate, unlock.
func (x *X) Bump() {
	x.Lock()
	x.N++
	x.Unlock()
}
