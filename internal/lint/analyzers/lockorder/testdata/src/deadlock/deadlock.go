// Package deadlock exercises the lockorder analyzer: direct and
// call-transitive acquisition cycles, and the shapes that must stay
// silent — consistent orders, two instances of one type, sequential
// lock/unlock, and suppressed unreachable orders.
package deadlock

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var a A
var b B

// ab acquires A.mu then B.mu; with ba below that is a cycle.
func ab() {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle`
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba() {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var c C
var d D

// cd closes a cycle transitively: D.mu is acquired by the callee while
// C.mu is held here.
func cd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD() // want `lock-order cycle`
}

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

func dc() {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC()
}

func lockC() {
	c.mu.Lock()
	c.mu.Unlock()
}

type R struct{ mu sync.RWMutex }

type S struct{ mu sync.Mutex }

var r R
var s S

// rs holds only a read lock, but RLock counts: a writer queued on R.mu
// blocks new readers, so the read-side cycle still deadlocks.
func rs() {
	r.mu.RLock()
	s.mu.Lock() // want `lock-order cycle`
	s.mu.Unlock()
	r.mu.RUnlock()
}

func sr() {
	s.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

var e E
var f F

// ef1/ef2 take E.mu before F.mu everywhere: a consistent order is not a
// cycle.
func ef1() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func ef2() {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

// transfer locks two instances of one type: the type-level abstraction
// cannot tell them apart, so the self-edge is deliberately dropped.
func transfer(src, dst *A) {
	src.mu.Lock()
	dst.mu.Lock()
	dst.n, src.n = src.n, dst.n
	dst.mu.Unlock()
	src.mu.Unlock()
}

// seq releases before acquiring: the locks never overlap.
func seq() {
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

type G struct{ mu sync.Mutex }

type H struct{ mu sync.Mutex }

var g G
var h H

func gh() {
	g.mu.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}

func hg() {
	h.mu.Lock()
	//lint:allow-lockorder fixture: this order is provably unreachable
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}
