// Package lockxuser closes a lock cycle across a package boundary: its
// own mutex orders against lockx.X's embedded mutex both ways.
package lockxuser

import (
	"sync"

	"lockx"
)

type U struct {
	mu sync.Mutex
	n  int
}

func (u *U) UnderBoth(x *lockx.X) {
	u.mu.Lock()
	x.Lock() // want `lock-order cycle`
	x.N++
	x.Unlock()
	u.mu.Unlock()
}

func (u *U) Reverse(x *lockx.X) {
	x.Lock()
	u.mu.Lock()
	u.n++
	u.mu.Unlock()
	x.Unlock()
}

// Transitive is order-consistent with UnderBoth (U.mu before X's mutex,
// here through Bump): it adds no reverse edge and no second cycle.
func (u *U) Transitive(x *lockx.X) {
	u.mu.Lock()
	defer u.mu.Unlock()
	x.Bump()
}
