package lockhold_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/lockhold"
)

// TestLockhold checks every blocking shape — channel send and receive,
// select with no default, file I/O, framed I/O, context-taking calls —
// against held locks (including deferred unlocks and the *Locked naming
// convention), and the shapes that must stay silent: unlock-then-block,
// in-memory bytes.Buffer I/O, select with a default, and
// //lint:allow-lockhold annotations.
func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "stage")
}
