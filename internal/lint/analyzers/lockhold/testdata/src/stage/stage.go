// Fixture for a guarded server package: no mutex may be held across a
// blocking operation.
package stage

import (
	"bytes"
	"context"
	"os"
	"sync"
)

type client struct{}

func (c *client) Call(ctx context.Context) error { return nil }

type framer struct{}

func (f *framer) WriteFrame(p []byte) error { return nil }

type store struct {
	mu  sync.Mutex
	buf bytes.Buffer
	ch  chan int
	cli *client
}

func (s *store) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `s\.mu is held across a channel send`
	s.mu.Unlock()
}

func (s *store) badRecv() {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-s.ch // want `s\.mu is held across a channel receive`
	_ = v
}

func (s *store) badDeferFile() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.WriteFile("x", nil, 0o644) // want `s\.mu is held across file I/O \(os\.WriteFile\)`
}

func (s *store) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `s\.mu is held across a select with no default`
	case v := <-s.ch:
		_ = v
	}
}

func (s *store) badRPC(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cli.Call(ctx) // want `s\.mu is held across a context-taking call \(Call\)`
}

func (s *store) badFrame(f *framer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.WriteFrame(nil) // want `s\.mu is held across framed I/O \(WriteFrame\)`
}

// evictLocked runs with the caller's lock held, by naming convention.
func (s *store) evictLocked() {
	os.Remove("x") // want `\(caller's lock\) is held across file I/O \(os\.Remove\)`
}

func (s *store) goodUnlockFirst() {
	s.mu.Lock()
	s.mu.Unlock()
	os.WriteFile("x", nil, 0o644)
}

// bytes.Buffer satisfies io.Reader/io.Writer but is memory, not a
// stream; holding a lock across it is fine.
func (s *store) goodBuffer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write([]byte("x"))
	p := make([]byte, 1)
	s.buf.Read(p)
}

func (s *store) goodSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *store) goodAllowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow-lockhold the file lives on a ramdisk; provably instant
	os.Remove("x")
}

// goodCondWait: Cond.Wait must be called with its mutex held and parks
// with the lock released, so it is not a blocking call under the lock.
// WaitGroup.Wait stays flagged.
func (s *store) goodCondWait(cond *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cond.Wait()
}

func (s *store) badWaitGroup(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `s\.mu is held across sync\.WaitGroup\.Wait`
}
