// Package lockhold implements the gridlint analyzer that flags a mutex
// held across a blocking operation.
//
// The deadlock shape that bites proxy cores: a sync.Mutex (or RWMutex) is
// taken, and before it is released the goroutine parks — on a channel
// send or receive, a select, a network or file operation, or an RPC that
// takes a context. Every other goroutine needing the lock now waits on
// the kernel or a peer, and a slow peer becomes a stalled proxy. The
// analyzer walks each function in the guarded server packages (core,
// peerlink, stage, tunnel) tracking which locks are held statement by
// statement — `defer mu.Unlock()` holds to function end — and reports
// blocking operations reached with a lock held. Functions whose name ends
// in "Locked" are, by gridproxy convention, called with their receiver's
// lock held, and are scanned as if a lock were taken on entry. The check
// is intra-procedural and conservative around branches; a finding that is
// provably safe can be suppressed with `//lint:allow-lockhold <why>`.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/analyzers/ctxprop"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no mutex may be held across a channel operation, network or file I/O, or other blocking call",
	Run:  run,
}

// blockingOSFuncs are package-level os functions that hit the filesystem.
var blockingOSFuncs = map[string]bool{
	"WriteFile": true, "ReadFile": true, "Open": true, "Create": true,
	"OpenFile": true, "ReadDir": true, "MkdirAll": true, "Mkdir": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
}

// blockingWireMethods are gridproxy's own framed-I/O and handshake
// primitives: blocking regardless of receiver type.
var blockingWireMethods = map[string]bool{
	"ReadFrame": true, "WriteFrame": true, "ReadMessage": true,
	"WriteMessage": true, "Handshake": true, "Flush": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !ctxprop.GuardedPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]token.Pos{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Convention: *Locked functions run with the caller's
				// lock held for their whole extent.
				held["(caller's lock)"] = fd.Pos()
			}
			c.scanBlock(fd.Body.List, held)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// scanBlock walks stmts in order, maintaining the set of held locks.
// Branch bodies are scanned with a copy of the set: an unlock inside a
// branch applies within that branch only, which is conservative for the
// fall-through path (suppress provable false positives with
// //lint:allow-lockhold).
func (c *checker) scanBlock(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		c.scanStmt(stmt, held)
	}
}

func (c *checker) scanStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, isLock := c.lockOp(call); isLock {
				if op {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		c.checkBlocking(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end (so no
		// delete); deferred work itself runs after the last statement
		// and is not scanned.
		return
	case *ast.SendStmt:
		c.report(held, s.Pos(), "a channel send")
		c.checkBlocking(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkBlocking(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		c.checkBlocking(s.Cond, held)
		c.scanBlock(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.scanStmt(s.Else, copyHeldStmt(held))
		}
	case *ast.ForStmt:
		c.scanBlock(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if t, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				c.report(held, s.Pos(), "a range over a channel")
			}
		}
		c.scanBlock(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Tag != nil {
			c.checkBlocking(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			c.scanBlock(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.scanBlock(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.report(held, s.Pos(), "a select with no default")
		}
		for _, cl := range s.Body.List {
			c.scanBlock(cl.(*ast.CommClause).Body, copyHeld(held))
		}
	case *ast.BlockStmt:
		c.scanBlock(s.List, held)
	case *ast.LabeledStmt:
		c.scanStmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkBlocking(e, held)
		}
	case *ast.GoStmt:
		// The new goroutine does not inherit the holder; its body is
		// scanned when its function declaration is (if local).
		return
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkBlocking(v, held)
					}
				}
			}
		}
	}
}

// copyHeldStmt exists so an else-branch (an ast.Stmt, possibly a block or
// a chained if) can be scanned against its own copy.
func copyHeldStmt(held map[string]token.Pos) map[string]token.Pos { return copyHeld(held) }

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOp classifies call as a lock acquisition (true,true), release
// (key,false,true), or neither (shared with the lock walker that
// lockorder and guardedby drive).
func (c *checker) lockOp(call *ast.CallExpr) (key string, acquire, isLock bool) {
	return lintutil.LockOp(c.pass.TypesInfo, call)
}

// checkBlocking inspects an expression tree for blocking operations,
// reporting each one reached while a lock is held. Function literals are
// not descended into: they run later, on their own goroutine or stack.
func (c *checker) checkBlocking(root ast.Expr, held map[string]token.Pos) {
	if root == nil || len(held) == 0 {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(held, n.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if kind := c.blockingCall(n); kind != "" {
				c.report(held, n.Pos(), kind)
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking, returning a description or
// "".
func (c *checker) blockingCall(call *ast.CallExpr) string {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	pkg := lintutil.PkgPath(fn)
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)

	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep"
	case pkg == "os" && sig != nil && sig.Recv() == nil && blockingOSFuncs[name]:
		return "file I/O (os." + name + ")"
	case pkg == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen"):
		return "net." + name
	case pkg == "sync" && name == "Wait":
		// Cond.Wait is the one sync.Wait that must run with the lock
		// held — it releases the mutex while parked, so contenders are
		// not stalled and flagging it would outlaw the pattern itself.
		if recvTypeName(sig) == "Cond" {
			return ""
		}
		return "sync." + recvTypeName(sig) + ".Wait"
	}
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	if blockingWireMethods[name] {
		return "framed I/O (" + name + ")"
	}
	if name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo" {
		// bytes.Buffer/Reader and strings.Builder/Reader satisfy io.Reader
		// or io.Writer but never block — they are memory, not streams.
		if pkg != "bytes" && pkg != "strings" && implementsIO(sig.Recv().Type()) {
			return "stream I/O (" + name + ")"
		}
	}
	// An RPC by convention: a method or function whose first parameter
	// is a context.Context blocks until its deadline.
	if sig.Params().Len() > 0 && lintutil.IsNamedType(sig.Params().At(0).Type(), "context", "Context") {
		return "a context-taking call (" + name + ")"
	}
	return ""
}

func recvTypeName(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "?"
}

// ioReader and ioWriter are structural stand-ins for io.Reader/io.Writer,
// built once so receiver types can be tested without importing io's
// export data.
var ioReader, ioWriter = func() (*types.Interface, *types.Interface) {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	mk := func(name string) *types.Interface {
		sig := types.NewSignatureType(nil, nil, nil,
			types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice)),
			types.NewTuple(
				types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
				types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
			), false)
		iface := types.NewInterfaceType([]*types.Func{
			types.NewFunc(token.NoPos, nil, name, sig),
		}, nil)
		iface.Complete()
		return iface
	}
	return mk("Read"), mk("Write")
}()

func implementsIO(recv types.Type) bool {
	return types.Implements(recv, ioReader) || types.Implements(recv, ioWriter)
}

// report emits one diagnostic per blocking site, naming the held locks.
func (c *checker) report(held map[string]token.Pos, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	if lintutil.Allowed(c.pass, pos, "allow-lockhold") {
		return
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	c.pass.Reportf(pos, "%s is held across %s — a parked goroutine stalls every contender for the lock",
		strings.Join(names, ", "), what)
}
