// Package mixed exercises the atomicmix analyzer: fields touched both
// atomically and plainly are flagged at the plain site; purely-atomic
// fields, purely-plain fields, typed atomics and suppressed accesses
// stay silent.
package mixed

import "sync/atomic"

type stats struct {
	hits   int64 // atomic everywhere: fine
	misses int64 // atomic in bump, plain in reset: mixed
	errs   int64 // never atomic: fine
	gauge  atomic.Int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
	s.gauge.Add(1)
}

func (s *stats) read() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) reset() {
	s.misses = 0 // want `field misses is accessed via sync/atomic`
	s.errs = 0
}

func (s *stats) sample() int64 {
	return s.misses // want `field misses is accessed via sync/atomic`
}

// snapshot documents a deliberate plain read.
func (s *stats) snapshot() int64 {
	//lint:allow-atomicmix fixture: called after the writers have joined
	return s.misses
}

func (s *stats) plainErrs() int64 {
	return s.errs
}
