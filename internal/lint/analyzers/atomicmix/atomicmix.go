// Package atomicmix implements the gridlint analyzer that flags struct
// fields accessed both through sync/atomic and with plain loads/stores.
//
// Mixing the two disciplines is how the tunnel session's PING nonce race
// happened (fixed in PR 5): the atomic side establishes no
// happens-before with the plain side, so the plain load can read a torn
// or stale value and -race only notices when the schedule cooperates. A
// field is atomic-accessed when its address is passed to a sync/atomic
// function (`atomic.AddInt64(&s.n, 1)`); any other read or write of the
// same field outside test files is then a mixed access and is reported
// at the plain site. Typed atomics (atomic.Int64 and friends) make the
// mix unrepresentable and are the preferred fix; a plain access that is
// provably pre-concurrency (a constructor pattern the analyzer cannot
// see) is suppressed with `//lint:allow-atomicmix <why>`.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must not also be accessed with plain loads/stores",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// First pass: fields whose address reaches a sync/atomic call, and
	// the exact selector nodes consumed that way (they are not plain
	// accesses).
	atomicFields := map[*types.Var]token.Pos{}
	consumed := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || lintutil.PkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := fieldOf(pass, sel)
				if obj == nil {
					continue
				}
				consumed[sel] = true
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = sel.Pos()
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Second pass: plain accesses to those fields.
	type plain struct {
		pos token.Pos
		obj *types.Var
	}
	var plains []plain
	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			obj := fieldOf(pass, sel)
			if obj == nil {
				return true
			}
			if _, ok := atomicFields[obj]; !ok {
				return true
			}
			plains = append(plains, plain{pos: sel.Sel.Pos(), obj: obj})
			return false
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
	for _, p := range plains {
		if lintutil.Allowed(pass, p.pos, "allow-atomicmix") {
			continue
		}
		pass.Reportf(p.pos,
			"field %s is accessed via sync/atomic (first at %s) but read or written plainly here — pick one discipline, preferably a typed atomic",
			p.obj.Name(), pass.Fset.Position(atomicFields[p.obj]))
	}
	return nil, nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	obj, _ := s.Obj().(*types.Var)
	return obj
}
