package atomicmix_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/atomicmix"
)

// TestAtomicmix checks that a field reached both by &field-to-sync/atomic
// and by plain loads/stores is flagged at the plain site, while
// single-discipline fields, typed atomics and //lint:allow-atomicmix
// stay silent.
func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mixed")
}
