package metricnames_test

import (
	"testing"

	"gridproxy/internal/lint/analysistest"
	"gridproxy/internal/lint/analyzers/metricnames"
)

// TestMetricNames covers both directions of the inventory invariant:
// raw string literals and non-metrics constants at Counter/Gauge call
// sites are flagged, dynamic (non-constant) names and proper
// metrics-package constants are not, and the whole-program pass flags a
// declared constant no package emits.
func TestMetricNames(t *testing.T) {
	analysistest.Run(t, "testdata", metricnames.Analyzer, "metricsuser")
}
