// Package metricnames implements the gridlint analyzer that keeps the
// metric inventory of DESIGN §13 honest.
//
// Two directions are enforced. First, every name handed to
// (*metrics.Registry).Counter or .Gauge must be a constant declared in the
// metrics package — a raw string literal at a call site creates a
// typo-split counter that no dashboard and no DESIGN table knows about.
// Dynamic names computed from those constants (e.g. peerlink's
// state-gauge lookup) stay legal: only constant expressions that do not
// resolve to a metrics-package constant are flagged. Second, whole-program
// (standalone gridlint only): every constant the metrics package declares
// must be referenced somewhere, so the §13 inventory cannot silently rot
// into fiction when a metric's last call site is deleted.
package metricnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

// Analyzer is the metricnames analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "metricnames",
	Doc:        "metric names must be constants declared in internal/metrics, and every declared constant must be used",
	Run:        run,
	ProgramRun: programRun,
}

// result is the per-package value handed to programRun.
type result struct {
	// declared maps metric-constant name to its declaration position;
	// only the metrics package itself fills it.
	declared map[string]token.Pos
	// used holds the metrics-package constants this package references.
	used map[string]bool
	// importsMetrics records that the package depends on the metrics
	// package at all; the unused check stays silent unless at least one
	// consumer is in scope (a partial run has no usage information).
	importsMetrics bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := &result{declared: map[string]token.Pos{}, used: map[string]bool{}}

	if isMetricsPackage(pass.Pkg) {
		for _, name := range pass.Pkg.Scope().Names() {
			obj := pass.Pkg.Scope().Lookup(name)
			if c, ok := obj.(*types.Const); ok && c.Exported() && isString(c.Type()) {
				res.declared[name] = c.Pos()
			}
		}
	}

	for ident, obj := range pass.TypesInfo.Uses {
		c, ok := obj.(*types.Const)
		if !ok || !isString(c.Type()) || !c.Exported() {
			continue
		}
		if c.Pkg() == pass.Pkg && isMetricsPackage(pass.Pkg) {
			// A reference from inside the metrics package (one constant
			// defined from another) does not prove a metric is emitted.
			continue
		}
		if isMetricsPackage(c.Pkg()) && !lintutil.InTestFile(pass, ident.Pos()) {
			res.used[c.Name()] = true
			res.importsMetrics = true
		}
	}

	for _, file := range pass.Files {
		if lintutil.InTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !isMetricsPackage(fn.Pkg()) {
				return true
			}
			if fn.Name() != "Counter" && fn.Name() != "Gauge" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
				return true // not the Registry lookup methods
			}
			arg := ast.Unparen(call.Args[0])
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil {
				return true // computed name (e.g. a state-gauge lookup table)
			}
			if declaredInMetrics(pass, arg) {
				return true
			}
			pass.Reportf(arg.Pos(),
				"metric name %s is not a constant from the metrics package; declare it there so the DESIGN §13 inventory stays complete",
				tv.Value.ExactString())
			return true
		})
	}
	return res, nil
}

// programRun reports metrics-package constants no analyzed package uses.
func programRun(prog *analysis.Program, report func(analysis.Diagnostic)) {
	declared := map[string]token.Pos{}
	used := map[string]bool{}
	anyConsumer := false
	for _, u := range prog.Units {
		r, ok := u.Result.(*result)
		if !ok || r == nil {
			continue
		}
		for name, pos := range r.declared {
			declared[name] = pos
		}
		for name := range r.used {
			used[name] = true
		}
		anyConsumer = anyConsumer || r.importsMetrics
	}
	if !anyConsumer {
		return // partial scope: no usage information to judge by
	}
	names := make([]string, 0, len(declared))
	for name := range declared {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !used[name] {
			report(analysis.Diagnostic{
				Pos: declared[name],
				Message: "metric constant " + name +
					" is declared but never used — emit it or drop it from the DESIGN §13 inventory",
			})
		}
	}
}

// isMetricsPackage identifies the metrics package structurally (package
// named "metrics" declaring the Registry type), so fixture packages in
// analyzer tests qualify exactly like internal/metrics.
func isMetricsPackage(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "metrics" {
		return false
	}
	_, ok := pkg.Scope().Lookup("Registry").(*types.TypeName)
	return ok
}

func declaredInMetrics(pass *analysis.Pass, arg ast.Expr) bool {
	var obj types.Object
	switch e := arg.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	c, ok := obj.(*types.Const)
	return ok && isMetricsPackage(c.Pkg())
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
