// Fixture modelled on internal/metrics: a Registry with name-keyed
// Counter/Gauge lookups and the canonical name constants. metricnames
// identifies it structurally (package metrics declaring Registry).
package metrics

type Registry struct{}

type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

func (*Gauge) Set(v int64) {}

func (*Registry) Counter(name string) *Counter { return new(Counter) }

func (*Registry) Gauge(name string) *Gauge { return new(Gauge) }

// The metric inventory. Every constant declared here must be emitted by
// some package in scope.
const (
	JobsStarted  = "jobs_started"
	QueueDepth   = "queue_depth"
	NeverEmitted = "never_emitted" // want `metric constant NeverEmitted is declared but never used`
)
