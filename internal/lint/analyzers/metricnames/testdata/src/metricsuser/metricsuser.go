// Fixture consumer: metric names must come from the metrics package.
package metricsuser

import "metrics"

var reg *metrics.Registry

func emit() {
	reg.Counter(metrics.JobsStarted).Inc()
	reg.Gauge(metrics.QueueDepth).Set(1)

	reg.Counter("raw_name").Inc() // want `metric name "raw_name" is not a constant from the metrics package`

	const local = "local_name"
	reg.Gauge(local).Set(2) // want `metric name "local_name" is not a constant from the metrics package`
}

// dynamic names computed from non-constant parts are legal: the analyzer
// only judges constant arguments.
func dynamic(state string) {
	reg.Gauge(metrics.QueueDepth + "_" + state).Set(3)
}
