package lintutil_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/lintutil"
)

const indexSrc = `package sample

type T struct{ n int }

func (t *T) Bump() { t.n++ }

func Free() int { return 1 }
`

func checkedPass(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sample.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("sample", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
	}
}

// TestFuncIndexSingleWalk is the single-walk guarantee: four analyzers
// asking for the same package's index must trigger exactly one
// declaration walk, and all must see the same table.
func TestFuncIndexSingleWalk(t *testing.T) {
	pass := checkedPass(t, indexSrc)
	before := lintutil.IndexBuilds()
	first := lintutil.FuncIndex(pass)
	if got := lintutil.IndexBuilds() - before; got != 1 {
		t.Fatalf("first FuncIndex built %d indexes, want 1", got)
	}
	// Same *types.Package through a different Pass (a second analyzer's
	// view): cached, not rebuilt.
	other := &analysis.Pass{
		Fset:      pass.Fset,
		Files:     pass.Files,
		Pkg:       pass.Pkg,
		TypesInfo: pass.TypesInfo,
	}
	for i := 0; i < 3; i++ {
		if lintutil.FuncIndex(other) != first {
			t.Fatal("FuncIndex returned a different index for the same package")
		}
	}
	if got := lintutil.IndexBuilds() - before; got != 1 {
		t.Fatalf("suite of 4 lookups built %d indexes, want 1", got)
	}

	// A different package builds its own index.
	pass2 := checkedPass(t, "package sample\n\nfunc Other() {}\n")
	if lintutil.FuncIndex(pass2) == first {
		t.Fatal("distinct packages share an index")
	}
	if got := lintutil.IndexBuilds() - before; got != 2 {
		t.Fatalf("two packages built %d indexes, want 2", got)
	}
}

// TestFuncIndexContents checks the table maps both directions for
// methods and plain functions.
func TestFuncIndexContents(t *testing.T) {
	pass := checkedPass(t, indexSrc)
	idx := lintutil.FuncIndex(pass)
	if len(idx.Decls) != 2 || len(idx.Funcs) != 2 {
		t.Fatalf("index sizes = %d/%d, want 2/2", len(idx.Decls), len(idx.Funcs))
	}
	for fn, fd := range idx.Decls {
		if idx.Funcs[fd] != fn {
			t.Errorf("Funcs is not the inverse of Decls for %s", fn.Name())
		}
	}
}
