package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A LockWalker scans one function body in statement order, tracking the
// set of held sync.Mutex/RWMutex locks the way lockhold does: Lock/RLock
// adds the receiver expression (by source text), Unlock/RUnlock removes
// it, a deferred unlock holds the lock to function end, branch bodies see
// a private copy of the set (conservative for the fall-through path), and
// function literals and `go` bodies are not descended — they run later,
// on their own stack. lockorder and guardedby drive their analyses off
// this one walk instead of each re-implementing hold tracking.
type LockWalker struct {
	Info *types.Info

	// OnExpr, if set, is called for every expression node reached
	// outside lock operations, with the held set live at that point.
	// Callbacks must not retain or mutate the map.
	OnExpr func(n ast.Node, held map[string]token.Pos)

	// OnAcquire, if set, is called when a lock operation acquires key,
	// with the set held *before* the acquisition.
	OnAcquire func(call *ast.CallExpr, key string, held map[string]token.Pos)
}

// Walk scans body with the given initially-held set (nil for none). The
// caller seeds held for *Locked functions, whose receiver lock is held on
// entry by convention.
func (w *LockWalker) Walk(body *ast.BlockStmt, held map[string]token.Pos) {
	if held == nil {
		held = map[string]token.Pos{}
	}
	w.block(body.List, held)
}

func (w *LockWalker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		w.stmt(stmt, held)
	}
}

func (w *LockWalker) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, acquire, isLock := LockOp(w.Info, call); isLock {
				if acquire {
					if w.OnAcquire != nil {
						w.OnAcquire(call, key, held)
					}
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end (no
		// delete); the deferred call itself runs after the last
		// statement and is not scanned.
		return
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		inner := copyHeld(held)
		w.block(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Tag, held)
		for _, cc := range s.Body.List {
			w.block(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			w.block(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			inner := copyHeld(held)
			if comm.Comm != nil {
				w.stmt(comm.Comm, inner)
			}
			w.block(comm.Body, inner)
		}
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.GoStmt:
		// The new goroutine does not inherit the holder.
		return
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr delivers every node of the expression tree to OnExpr, skipping
// function literals (they run later, possibly without the lock).
func (w *LockWalker) expr(root ast.Expr, held map[string]token.Pos) {
	if root == nil || w.OnExpr == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			w.OnExpr(n, held)
		}
		return true
	})
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// LockOp classifies call as a lock acquisition (key, true, true), a
// release (key, false, true), or neither. The method must resolve to
// sync.Mutex or sync.RWMutex (including via embedding); key is the source
// text of the receiver expression, so matched Lock/Unlock pairs share it.
func LockOp(info *types.Info, call *ast.CallExpr) (key string, acquire, isLock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", false, false
	}
	fn := Callee(info, call)
	if fn == nil || PkgPath(fn) != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), name == "Lock" || name == "RLock", true
}
