package lintutil

import (
	"go/ast"
	"go/types"
	"sync"
	"sync/atomic"

	"gridproxy/internal/lint/analysis"
)

// An Index is the per-package function-declaration table shared by the
// call-graph-walking analyzers (goroleak, lockorder, guardedby,
// atomicmix). Building it means walking every declaration of the
// package; with four analyzers needing the same table, the suite would
// pay that walk four times per package — FuncIndex memoizes it so the
// program is walked once no matter how many analyzers ask.
type Index struct {
	// Decls maps each function or method object declared in the package
	// to its declaration, so `go r.loop()` and call-graph edges resolve
	// to bodies.
	Decls map[*types.Func]*ast.FuncDecl
	// Funcs is the inverse: declaration to object. Iterate pass.Files
	// for deterministic order and use Funcs to get the object.
	Funcs map[*ast.FuncDecl]*types.Func
}

var (
	indexes     sync.Map // *types.Package -> *Index
	indexBuilds atomic.Int64
)

// FuncIndex returns the function index for the package under analysis,
// building it at most once per package across the whole analyzer suite.
func FuncIndex(pass *analysis.Pass) *Index {
	if v, ok := indexes.Load(pass.Pkg); ok {
		return v.(*Index)
	}
	idx := &Index{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Funcs: make(map[*ast.FuncDecl]*types.Func),
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				idx.Decls[fn] = fd
				idx.Funcs[fd] = fn
			}
		}
	}
	actual, loaded := indexes.LoadOrStore(pass.Pkg, idx)
	if !loaded {
		indexBuilds.Add(1)
	}
	return actual.(*Index)
}

// IndexBuilds reports how many package indexes have been built in this
// process. Tests assert that running the full suite over a package
// increments it by exactly one — the single-walk guarantee.
func IndexBuilds() int64 { return indexBuilds.Load() }
