// Package lintutil holds the small AST/type queries shared by gridproxy's
// analyzers: suppression-annotation lookup, test-file detection, and
// callee resolution.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gridproxy/internal/lint/analysis"
)

// Allowed reports whether the finding at pos is suppressed by a
// `//lint:<directive>` comment. A suppression counts when it sits on the
// same line as the finding, in the comment group ending on the line
// directly above it (so the justification may run over several comment
// lines), or in the doc comment of the enclosing function — the last
// form is how a whole function is annotated as a legitimate root (for
// example `//lint:allow-background proxy owns its lifecycle`). The
// directive should carry a justification; the analyzer does not parse
// it, reviewers do.
func Allowed(pass *analysis.Pass, pos token.Pos, directive string) bool {
	return AllowedIn(pass.Fset, pass.Files, pos, directive)
}

// AllowedIn is Allowed for callers that hold raw files rather than a
// Pass — ProgramRun hooks, which see the whole program after per-package
// passes finish.
func AllowedIn(fset *token.FileSet, files []*ast.File, pos token.Pos, directive string) bool {
	file := fileAmong(files, pos)
	if file == nil {
		return false
	}
	marker := "lint:" + directive
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		end := fset.Position(cg.End()).Line
		if end != line && end != line-1 {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, marker) {
				return true
			}
		}
	}
	if fd := EnclosingFunc(file, pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, marker) {
				return true
			}
		}
	}
	return false
}

// FileOf returns the syntax file containing pos.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	return fileAmong(pass.Files, pos)
}

func fileAmong(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// EnclosingFunc returns the function declaration containing pos, if any.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. Tests are free
// to use raw metric names, background contexts and unsupervised
// goroutines; the invariants gridlint enforces are about production
// paths.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the static callee of call, or nil for dynamic calls
// (function values, interface methods resolve to the interface method
// object, which is still returned).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// PkgName returns the name of the package declaring obj, or "".
func PkgName(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name()
}

// PkgPath returns the path of the package declaring obj, or "".
func PkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
