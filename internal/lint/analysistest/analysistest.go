// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that should
// trigger a diagnostic carries a comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with each expectation a Go string literal (interpreted or raw) holding a
// regular expression that must match a diagnostic reported on that line.
// Diagnostics without a matching expectation, and expectations without a
// matching diagnostic, fail the test. Fixture packages may import one
// another (resolved under <testdata>/src) and the standard library
// (resolved through `go list -export`, exactly like the real driver). The
// analyzer runs over every fixture package in dependency order — so facts
// flow — and its ProgramRun hook, if any, runs afterwards over the whole
// fixture program.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/load"
)

// Run applies a to the fixture packages named by pkgs (plus any fixture
// packages they import) and checks // want expectations across all of
// them.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File) // fixture import path -> files
	var order []string
	stdImports := make(map[string]bool)

	// Parse the named fixtures and, transitively, every fixture package
	// they import, recording dependency order.
	var parsePkg func(path string) error
	seen := make(map[string]bool)
	parsePkg = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(src, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %q: %w", path, err)
		}
		var files []*ast.File
		var deps []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if _, err := os.Stat(filepath.Join(src, filepath.FromSlash(p))); err == nil {
					deps = append(deps, p)
				} else {
					stdImports[p] = true
				}
			}
		}
		if len(files) == 0 {
			return fmt.Errorf("fixture package %q has no Go files", path)
		}
		for _, d := range deps {
			if err := parsePkg(d); err != nil {
				return err
			}
		}
		parsed[path] = files
		order = append(order, path)
		return nil
	}
	for _, p := range pkgs {
		if err := parsePkg(p); err != nil {
			t.Fatal(err)
		}
	}

	stdImp, err := stdImporter(fset, stdImports)
	if err != nil {
		t.Fatal(err)
	}

	// Type-check fixtures in dependency order; fixture imports resolve
	// to already-checked fixture packages, everything else to std.
	checked := make(map[string]*types.Package)
	infos := make(map[string]*types.Info)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return stdImp.Import(path)
	})
	for _, path := range order {
		info := load.NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, parsed[path], info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", path, err)
		}
		checked[path] = pkg
		infos[path] = info
	}

	// Run the analyzer with an in-memory fact store, then ProgramRun.
	type diag struct {
		pos token.Pos
		msg string
	}
	var diags []diag
	facts := make(map[string]map[string]analysis.Fact) // pkg path -> fact type -> fact
	var units []analysis.ProgramUnit
	for _, path := range order {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     parsed[path],
			Pkg:       checked[path],
			TypesInfo: infos[path],
		}
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, diag{pos: d.Pos, msg: d.Message})
		}
		pkgPath := path
		pass.SetFactHooks(
			func(p *types.Package, fact analysis.Fact) bool {
				stored, ok := facts[p.Path()][fmt.Sprintf("%T", fact)]
				if !ok {
					return false
				}
				copyFact(fact, stored)
				return true
			},
			func(fact analysis.Fact) {
				m := facts[pkgPath]
				if m == nil {
					m = make(map[string]analysis.Fact)
					facts[pkgPath] = m
				}
				m[fmt.Sprintf("%T", fact)] = fact
			},
		)
		result, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, path, err)
		}
		units = append(units, analysis.ProgramUnit{Pkg: checked[path], Files: parsed[path], Result: result})
	}
	if a.ProgramRun != nil {
		a.ProgramRun(&analysis.Program{Fset: fset, Units: units}, func(d analysis.Diagnostic) {
			diags = append(diags, diag{pos: d.Pos, msg: d.Message})
		})
	}

	// Collect // want expectations from every fixture file.
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, path := range order {
		for _, f := range parsed[path] {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					rest := strings.TrimSpace(text[idx+len("want "):])
					for rest != "" {
						lit, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s: malformed want comment %q", key, c.Text)
						}
						s, err := strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: malformed want literal %q", key, lit)
						}
						re, err := regexp.Compile(s)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
						}
						wants[key] = append(wants[key], &want{re: re})
						rest = strings.TrimSpace(rest[len(lit):])
					}
				}
			}
		}
	}

	// Match diagnostics against expectations.
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	for _, d := range diags {
		pos := fset.Position(d.pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.msg) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.msg)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// stdImporter builds an export-data importer covering the given standard
// library packages (and their dependencies) via one `go list` run.
func stdImporter(fset *token.FileSet, paths map[string]bool) (types.Importer, error) {
	if len(paths) == 0 {
		return importerFunc(func(path string) (*types.Package, error) {
			return nil, fmt.Errorf("unexpected import %q in fixture", path)
		}), nil
	}
	var list []string
	for p := range paths {
		list = append(list, p)
	}
	sort.Strings(list)
	exports, err := load.ExportData(list)
	if err != nil {
		return nil, err
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}), nil
}

// copyFact copies the stored fact value into the caller's fact pointer.
// Facts are pointers to struct types; both ends have the same concrete
// type by construction (same analyzer, same fact type key).
func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
