// Package driver runs a suite of analyzers over source-loaded packages —
// the engine behind `gridlint ./...`.
//
// Unlike the `go vet -vettool` protocol (internal/lint/unitchecker), the
// standalone driver sees the whole analysis scope at once: package facts
// propagate in memory along the import graph, and after every per-package
// pass it executes each analyzer's ProgramRun hook, which is where
// whole-program invariants (metric inventory completeness, dead protocol
// codes) are checked.
package driver

import (
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/load"
)

// A Finding is one diagnostic with its source position resolved, ready
// for rendering (plain text or JSON).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// A finding pairs a diagnostic with the analyzer that produced it.
type finding struct {
	analyzer string
	diag     analysis.Diagnostic
}

// factKey addresses one exported fact: facts are private to an analyzer
// and keyed by the package they describe and their concrete type.
type factKey struct {
	analyzer string
	pkgPath  string
	factType reflect.Type
}

// Run loads the packages matched by patterns under dir, applies every
// analyzer, and prints diagnostics to w as "file:line:col: message
// (analyzer)". It returns the number of diagnostics reported; a non-nil
// error means the analysis itself could not run (load failure, analyzer
// crash), not that findings exist.
func Run(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	found, err := Findings(dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range found {
		if f.File == "" {
			fmt.Fprintf(w, "-: %s (%s)\n", f.Message, f.Analyzer)
			continue
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
	}
	return len(found), nil
}

// Findings loads the packages matched by patterns under dir, applies
// every analyzer, and returns the resolved diagnostics sorted by file,
// line, then analyzer. A non-nil error means the analysis itself could
// not run, not that findings exist.
func Findings(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset, pkgs, err := load.Packages(dir, patterns)
	if err != nil {
		return nil, err
	}

	facts := make(map[factKey]analysis.Fact)
	units := make(map[string][]analysis.ProgramUnit) // analyzer name -> units
	var findings []finding

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			target := pkg.Target
			pass.Report = func(d analysis.Diagnostic) {
				if target {
					findings = append(findings, finding{analyzer: a.Name, diag: d})
				}
			}
			name := a.Name
			pass.SetFactHooks(
				func(p *types.Package, fact analysis.Fact) bool {
					key := factKey{name, p.Path(), reflect.TypeOf(fact)}
					stored, ok := facts[key]
					if !ok {
						return false
					}
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				},
				func(fact analysis.Fact) {
					facts[factKey{name, pkg.PkgPath, reflect.TypeOf(fact)}] = fact
				},
			)
			result, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			units[a.Name] = append(units[a.Name], analysis.ProgramUnit{
				Pkg:    pkg.Types,
				Files:  pkg.Files,
				Result: result,
			})
		}
	}

	for _, a := range analyzers {
		if a.ProgramRun == nil {
			continue
		}
		prog := &analysis.Program{Fset: fset, Units: units[a.Name]}
		name := a.Name
		a.ProgramRun(prog, func(d analysis.Diagnostic) {
			findings = append(findings, finding{analyzer: name, diag: d})
		})
	}

	out := make([]Finding, 0, len(findings))
	for _, f := range findings {
		rf := Finding{Analyzer: f.analyzer, Message: f.diag.Message}
		if f.diag.Pos.IsValid() {
			p := fset.Position(f.diag.Pos)
			rf.File, rf.Line, rf.Column = p.Filename, p.Line, p.Column
		}
		out = append(out, rf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
