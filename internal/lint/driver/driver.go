// Package driver runs a suite of analyzers over source-loaded packages —
// the engine behind `gridlint ./...`.
//
// Unlike the `go vet -vettool` protocol (internal/lint/unitchecker), the
// standalone driver sees the whole analysis scope at once: package facts
// propagate in memory along the import graph, and after every per-package
// pass it executes each analyzer's ProgramRun hook, which is where
// whole-program invariants (metric inventory completeness, dead protocol
// codes) are checked.
package driver

import (
	"fmt"
	"go/token"
	"go/types"
	"io"
	"reflect"
	"sort"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/load"
)

// A finding pairs a diagnostic with the analyzer that produced it.
type finding struct {
	analyzer string
	diag     analysis.Diagnostic
}

// factKey addresses one exported fact: facts are private to an analyzer
// and keyed by the package they describe and their concrete type.
type factKey struct {
	analyzer string
	pkgPath  string
	factType reflect.Type
}

// Run loads the packages matched by patterns under dir, applies every
// analyzer, and prints diagnostics to w as "file:line:col: message
// (analyzer)". It returns the number of diagnostics reported; a non-nil
// error means the analysis itself could not run (load failure, analyzer
// crash), not that findings exist.
func Run(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	fset, pkgs, err := load.Packages(dir, patterns)
	if err != nil {
		return 0, err
	}

	facts := make(map[factKey]analysis.Fact)
	units := make(map[string][]analysis.ProgramUnit) // analyzer name -> units
	var findings []finding

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			target := pkg.Target
			pass.Report = func(d analysis.Diagnostic) {
				if target {
					findings = append(findings, finding{analyzer: a.Name, diag: d})
				}
			}
			name := a.Name
			pass.SetFactHooks(
				func(p *types.Package, fact analysis.Fact) bool {
					key := factKey{name, p.Path(), reflect.TypeOf(fact)}
					stored, ok := facts[key]
					if !ok {
						return false
					}
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				},
				func(fact analysis.Fact) {
					facts[factKey{name, pkg.PkgPath, reflect.TypeOf(fact)}] = fact
				},
			)
			result, err := a.Run(pass)
			if err != nil {
				return 0, fmt.Errorf("driver: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			units[a.Name] = append(units[a.Name], analysis.ProgramUnit{
				Pkg:    pkg.Types,
				Files:  pkg.Files,
				Result: result,
			})
		}
	}

	for _, a := range analyzers {
		if a.ProgramRun == nil {
			continue
		}
		prog := &analysis.Program{Fset: fset, Units: units[a.Name]}
		name := a.Name
		a.ProgramRun(prog, func(d analysis.Diagnostic) {
			findings = append(findings, finding{analyzer: name, diag: d})
		})
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].diag.Pos), fset.Position(findings[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", position(fset, f.diag.Pos), f.diag.Message, f.analyzer)
	}
	return len(findings), nil
}

func position(fset *token.FileSet, pos token.Pos) string {
	if !pos.IsValid() {
		return "-"
	}
	return fset.Position(pos).String()
}
