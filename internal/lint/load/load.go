// Package load turns `go list` output into type-checked packages for the
// standalone gridlint driver.
//
// The hermetic build environment has no golang.org/x/tools/go/packages, so
// loading is done the way `go vet` itself does it: `go list -export -deps
// -json` enumerates the import graph and compiles export data for every
// dependency, the packages of the main module are parsed and type-checked
// from source, and everything else is imported through the compiler export
// data via go/importer. The result carries full syntax plus types.Info, so
// analyzers can resolve identifiers across package boundaries.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one source-analyzed package of the main module.
type Package struct {
	// PkgPath is the full import path.
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types and TypesInfo carry the type-checked form.
	Types     *types.Package
	TypesInfo *types.Info
	// Target reports whether the package matched the load patterns
	// itself (true) or was pulled in only as a dependency of one that
	// did (false). Drivers report diagnostics only for targets but run
	// analyzers on every package so facts propagate.
	Target bool
	// Imports lists the package's direct imports by path.
	Imports []string
}

// listPkg mirrors the fields of `go list -json` output that load consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks the packages matched by patterns
// (plus their in-module dependencies), returning them in dependency order:
// every package appears after all of its in-module imports, so a driver
// running analyzers front to back sees facts flow from imported to
// importer.
func Packages(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list %s: %w", strings.Join(patterns, " "), err)
	}

	exports := make(map[string]string) // import path -> export data file
	var inModule []*listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			q := p
			inModule = append(inModule, &q)
		}
	}
	if len(inModule) == 0 {
		return nil, nil, fmt.Errorf("load: no packages match %s", strings.Join(patterns, " "))
	}

	ordered, err := topoSort(inModule)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range ordered {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Target:    !lp.DepOnly,
		Imports:   lp.Imports,
	}, nil
}

// ExportData compiles export data for the given packages (and their
// dependencies) via `go list -export -deps` and returns the import path →
// export file map. analysistest uses it to resolve standard-library
// imports inside fixture packages.
func ExportData(paths []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list -export %s: %w", strings.Join(paths, " "), err)
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// topoSort orders in-module packages so imports precede importers. Ties
// are broken by import path for deterministic output.
func topoSort(pkgs []*listPkg) ([]*listPkg, error) {
	byPath := make(map[string]*listPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })

	var ordered []*listPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPkg) error
	visit = func(p *listPkg) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("load: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, dep := range p.Imports {
			if dp, ok := byPath[dep]; ok {
				if err := visit(dp); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}
