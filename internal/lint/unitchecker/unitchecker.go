// Package unitchecker implements the `go vet -vettool` protocol for
// gridlint, mirroring golang.org/x/tools/go/analysis/unitchecker on the
// standard library alone.
//
// When the go command drives vetting it invokes the tool once per
// compilation unit with a JSON config file describing that unit: source
// files, the import map, compiler export data for every dependency, and
// fact files produced by earlier units. This package parses the config,
// type-checks the unit, replays dependency facts, runs the per-package
// analyzers, writes this unit's facts for downstream units, and reports
// diagnostics on stderr with exit status 2 — the contract `go vet`
// expects. Whole-program checks (Analyzer.ProgramRun) cannot run in this
// mode and are documented as standalone-only; run `gridlint ./...` (or the
// CI gate) to get them.
package unitchecker

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"reflect"
	"strings"

	"gridproxy/internal/lint/analysis"
	"gridproxy/internal/lint/load"
)

// Config mirrors the JSON schema of the file the go command passes to a
// vet tool (see cmd/go/internal/work and x/tools unitchecker.Config).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// factRecord is the on-disk form of one package fact. The fact value
// itself rides as a gob interface, so every fact type must be registered
// (Run does this from Analyzer.FactTypes).
type factRecord struct {
	Analyzer string
	PkgPath  string
	Fact     analysis.Fact
}

// Main implements a vet tool's command line: `tool -V=full`, `tool
// -flags`, or `tool file.cfg`. It returns the process exit code.
func Main(progname, version string, analyzers []*analysis.Analyzer, args []string) int {
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			// The go command fingerprints the tool for its build cache
			// with this line; any stable output works.
			fmt.Printf("%s version %s\n", progname, version)
			return 0
		case "-flags":
			// We expose no analyzer flags to `go vet`; an empty set is
			// a valid answer to the flag-discovery handshake.
			fmt.Println("[]")
			return 0
		}
		if strings.HasSuffix(args[0], ".cfg") {
			diags, err := runUnit(args[0], analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
				return 1
			}
			if len(diags) > 0 {
				for _, d := range diags {
					fmt.Fprintln(os.Stderr, d)
				}
				return 2
			}
			return 0
		}
	}
	fmt.Fprintf(os.Stderr, "%s: expected -V=full, -flags, or a .cfg file (go vet -vettool protocol)\n", progname)
	return 1
}

// runUnit analyzes one compilation unit, returning rendered diagnostics.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]string, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})

	info := load.NewInfo()
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	// Replay the facts exported while vetting this unit's dependencies.
	facts := make(map[factKey]analysis.Fact)
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue // dependency produced no facts
		}
		var records []factRecord
		err = gob.NewDecoder(f).Decode(&records)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading facts %s: %w", vetx, err)
		}
		for _, r := range records {
			facts[factKey{r.Analyzer, r.PkgPath, reflect.TypeOf(r.Fact)}] = r.Fact
		}
	}

	var diags []string
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if !cfg.VetxOnly {
				diags = append(diags, fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, name))
			}
		}
		pass.SetFactHooks(
			func(p *types.Package, fact analysis.Fact) bool {
				stored, ok := facts[factKey{name, p.Path(), reflect.TypeOf(fact)}]
				if !ok {
					return false
				}
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				return true
			},
			func(fact analysis.Fact) {
				facts[factKey{name, cfg.ImportPath, reflect.TypeOf(fact)}] = fact
			},
		)
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, cfg.ImportPath, err)
		}
	}

	// Persist the full fact store (dependency facts included) so
	// downstream units see transitive facts without re-reading every
	// ancestor's file.
	if cfg.VetxOutput != "" {
		records := make([]factRecord, 0, len(facts))
		for k, f := range facts {
			records = append(records, factRecord{Analyzer: k.analyzer, PkgPath: k.pkgPath, Fact: f})
		}
		var out strings.Builder
		if err := gob.NewEncoder(&out).Encode(records); err != nil {
			return nil, fmt.Errorf("encoding facts: %w", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte(out.String()), 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %w", err)
		}
	}
	return diags, nil
}

type factKey struct {
	analyzer string
	pkgPath  string
	factType reflect.Type
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
