// Package webui implements the paper's "Web Access Interface" layer: an
// HTTP view onto a site proxy, serving both a human-readable overview page
// and a JSON API ("the user will have a Web page at his/her disposal,
// facilitating access to information").
package webui

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/monitor"
)

// Handler serves the web interface of one proxy.
type Handler struct {
	proxy *core.Proxy
	mux   *http.ServeMux
	tmpl  *template.Template
}

// statusTimeout bounds how long an HTTP request may wait on peer sites.
const statusTimeout = 10 * time.Second

// New builds the web interface for a proxy.
func New(p *core.Proxy) *Handler {
	h := &Handler{
		proxy: p,
		mux:   http.NewServeMux(),
		tmpl:  template.Must(template.New("index").Parse(indexHTML)),
	}
	h.mux.HandleFunc("GET /", h.index)
	h.mux.HandleFunc("GET /api/status", h.apiStatus)
	h.mux.HandleFunc("GET /api/grid", h.apiGrid)
	h.mux.HandleFunc("GET /api/jobs", h.apiJobs)
	h.mux.HandleFunc("GET /api/resources", h.apiResources)
	h.mux.HandleFunc("GET /api/peers", h.apiPeers)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) statusSummaries(r *http.Request) ([]monitor.SiteSummary, error) {
	ctx, cancel := context.WithTimeout(r.Context(), statusTimeout)
	defer cancel()
	var sites []string
	if s := r.URL.Query().Get("site"); s != "" {
		sites = []string{s}
	}
	return h.proxy.Status(ctx, sites)
}

func (h *Handler) apiStatus(w http.ResponseWriter, r *http.Request) {
	summaries, err := h.statusSummaries(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, summaries)
}

func (h *Handler) apiGrid(w http.ResponseWriter, r *http.Request) {
	// Refresh the cached global view, then compile it.
	if _, err := h.statusSummaries(r); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, h.proxy.GlobalView().Compile())
}

func (h *Handler) apiJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.proxy.Jobs())
}

func (h *Handler) apiResources(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	writeJSON(w, h.proxy.AllResources(kind))
}

func (h *Handler) apiPeers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.proxy.Peers())
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// indexData feeds the overview template.
type indexData struct {
	Site      string
	Peers     []string
	Summaries []monitor.SiteSummary
	Jobs      []core.JobInfo
}

func (h *Handler) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	summaries, err := h.statusSummaries(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	data := indexData{
		Site:      h.proxy.Site(),
		Peers:     h.proxy.Peers(),
		Summaries: summaries,
		Jobs:      h.proxy.Jobs(),
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := h.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

const indexHTML = `<!DOCTYPE html>
<html>
<head><title>gridproxy — {{.Site}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
th, td { border: 1px solid #999; padding: 0.3em 0.8em; text-align: right; }
th { background: #eee; }
td:first-child, th:first-child { text-align: left; }
</style>
</head>
<body>
<h1>Grid proxy — site {{.Site}}</h1>
<p>Connected peers: {{if .Peers}}{{range .Peers}}{{.}} {{end}}{{else}}none{{end}}</p>

<h2>Site status (compiled per site)</h2>
<table>
<tr><th>Site</th><th>Nodes</th><th>Up</th><th>CPU free %</th><th>RAM free MB</th><th>Disk free MB</th><th>Load</th><th>Procs</th></tr>
{{range .Summaries}}
<tr><td>{{.Site}}</td><td>{{.Nodes}}</td><td>{{.NodesUp}}</td><td>{{printf "%.1f" .CPUFreePct}}</td><td>{{.RAMFreeMB}}</td><td>{{.DiskFreeMB}}</td><td>{{printf "%.2f" .Load1}}</td><td>{{.RunningProcs}}</td></tr>
{{end}}
</table>

<h2>Jobs</h2>
{{if .Jobs}}
<table>
<tr><th>App</th><th>State</th><th>Detail</th></tr>
{{range .Jobs}}
<tr><td>{{.AppID}}</td><td>{{.State}}</td><td>{{.Detail}}</td></tr>
{{end}}
</table>
{{else}}<p>No jobs launched from this proxy.</p>{{end}}
</body>
</html>`
