package webui_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/monitor"
	"gridproxy/internal/node"
	"gridproxy/internal/site"
	"gridproxy/internal/webui"
)

func newServer(t *testing.T) (*httptest.Server, *site.Testbed) {
	t.Helper()
	tb, err := site.NewTestbed(site.TestbedConfig{
		Sites: []site.SiteSpec{
			{Name: "sitea", Nodes: site.UniformNodes(2, 1)},
			{Name: "siteb", Nodes: site.UniformNodes(3, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ConnectAll(ctx); err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(webui.New(tb.Sites[0].Proxy))
	t.Cleanup(server.Close)
	return server, tb
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestAPIStatus(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/api/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var summaries []monitor.SiteSummary
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(summaries) != 2 {
		t.Fatalf("summaries = %+v", summaries)
	}
	total := 0
	for _, s := range summaries {
		total += s.Nodes
	}
	if total != 5 {
		t.Errorf("total nodes = %d", total)
	}
}

func TestAPIStatusSiteFilter(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/api/status?site=siteb")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var summaries []monitor.SiteSummary
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 1 || summaries[0].Site != "siteb" {
		t.Errorf("filtered = %+v", summaries)
	}
}

func TestAPIGrid(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/api/grid")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var status monitor.GridStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Sites != 2 || status.Nodes != 5 {
		t.Errorf("grid = %+v", status)
	}
}

func TestAPIResourcesAndPeers(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/api/resources?kind=node")
	if code != http.StatusOK {
		t.Fatalf("resources status = %d", code)
	}
	var resources []map[string]any
	if err := json.Unmarshal(body, &resources); err != nil {
		t.Fatal(err)
	}
	if len(resources) != 5 {
		t.Errorf("resources = %d", len(resources))
	}

	code, body = get(t, server.URL+"/api/peers")
	if code != http.StatusOK {
		t.Fatalf("peers status = %d", code)
	}
	var peers []string
	if err := json.Unmarshal(body, &peers); err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0] != "siteb" {
		t.Errorf("peers = %v", peers)
	}
}

func TestIndexPage(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	html := string(body)
	for _, want := range []string{"site sitea", "siteb", "<table>"} {
		if !strings.Contains(html, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	server, _ := newServer(t)
	code, body := get(t, server.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestNotFound(t *testing.T) {
	server, _ := newServer(t)
	code, _ := get(t, server.URL+"/no/such/page")
	if code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
}

func TestAPIJobsListsLaunches(t *testing.T) {
	server, tb := newServer(t)
	for _, s := range tb.Sites {
		s.RegisterProgram("noop", func(ctx context.Context, env node.Env) error { return nil })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	launch, err := tb.Sites[0].Proxy.LaunchMPI(ctx, core.LaunchSpec{
		Owner: "admin", Program: "noop", Procs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// noop isn't an MPI program; it just returns nil immediately, which
	// is fine for job bookkeeping.
	if err := launch.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, server.URL+"/api/jobs")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var jobs []core.JobInfo
	if err := json.Unmarshal(body, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].AppID != launch.AppID || jobs[0].State != "done" {
		t.Errorf("jobs = %+v", jobs)
	}
}
