// Package auth implements the grid's user-authentication and permission
// layer (paper layer 2, client side): "this layer is responsible for
// providing user authentication and right of access ... blocks unauthorized
// access to the resources".
//
// Three mechanisms from the paper are provided:
//
//   - userid/password verification (salted, iterated PBKDF2-HMAC-SHA256);
//   - digital-signature challenge/response using the user's ECDSA key
//     (certificates issued by the grid CA);
//   - per-user and per-group access permissions ("Access permissions can
//     be controlled individually or by user groups"), validated at both
//     the originating and destination proxies.
//
// Short-lived HMAC-sealed session tokens let a proxy avoid re-running the
// expensive verification on every request inside one session; package
// ticket provides the full Kerberos-style replacement the paper foresees.
package auth

import (
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gridproxy/internal/metrics"
)

// Authentication errors. They are deliberately coarse so callers cannot
// distinguish "no such user" from "bad password".
var (
	// ErrInvalidCredentials covers unknown users and failed proofs.
	ErrInvalidCredentials = errors.New("auth: invalid credentials")
	// ErrDenied indicates an authenticated user without the required
	// permission.
	ErrDenied = errors.New("auth: permission denied")
	// ErrTokenInvalid indicates a malformed, forged, or expired token.
	ErrTokenInvalid = errors.New("auth: invalid or expired token")
	// ErrUserExists is returned by AddUser for duplicates.
	ErrUserExists = errors.New("auth: user already exists")
	// ErrNoSuchUser is returned by mutation calls on unknown users.
	ErrNoSuchUser = errors.New("auth: no such user")
)

// PBKDF2 parameters. The iteration count is modest because the threat
// model is on-the-wire replay, not offline GPU cracking of a stolen store;
// tests and benchmarks run thousands of verifications.
const (
	pbkdf2Iterations = 4096
	saltSize         = 16
	keySize          = 32
)

// DefaultTokenLifetime is how long issued session tokens stay valid.
const DefaultTokenLifetime = 8 * time.Hour

// Permission is one (action, resource) capability. Both fields support the
// "*" wildcard. Resources follow "kind:name" naming, e.g. "site:ufscar".
type Permission struct {
	Action   string
	Resource string
}

func (p Permission) matches(action, resource string) bool {
	return matchPattern(p.Action, action) && matchPattern(p.Resource, resource)
}

// matchPattern supports exact match, "*", and "prefix*" patterns.
func matchPattern(pattern, value string) bool {
	if pattern == "*" || pattern == value {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(value, strings.TrimSuffix(pattern, "*"))
	}
	return false
}

// user is the stored record for one grid user.
type user struct {
	name   string
	groups map[string]bool
	salt   []byte
	hash   []byte
	pubKey *ecdsa.PublicKey
	perms  []Permission
}

// Store holds users, groups, and permissions for one grid (conventionally
// replicated to every proxy's configuration). It is safe for concurrent
// use.
type Store struct {
	mu         sync.RWMutex
	users      map[string]*user
	groupPerms map[string][]Permission
	tokenKey   []byte
	clock      func() time.Time
	reg        *metrics.Registry
	tokenTTL   time.Duration
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithClock overrides the Store's time source (tests).
func WithClock(clock func() time.Time) StoreOption {
	return func(s *Store) { s.clock = clock }
}

// WithMetrics wires a metrics registry into the store so expensive
// operations are counted (experiment E5).
func WithMetrics(reg *metrics.Registry) StoreOption {
	return func(s *Store) { s.reg = reg }
}

// WithTokenLifetime overrides DefaultTokenLifetime.
func WithTokenLifetime(d time.Duration) StoreOption {
	return func(s *Store) { s.tokenTTL = d }
}

// NewStore creates an empty store with a random token-sealing key.
func NewStore(opts ...StoreOption) (*Store, error) {
	key := make([]byte, keySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("auth: generate token key: %w", err)
	}
	s := &Store{
		users:      make(map[string]*user),
		groupPerms: make(map[string][]Permission),
		tokenKey:   key,
		clock:      time.Now,
		tokenTTL:   DefaultTokenLifetime,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// AddUser registers a user with a password. The password is stored as a
// salted PBKDF2 hash; the plaintext is never retained.
func (s *Store) AddUser(name, password string) error {
	salt := make([]byte, saltSize)
	if _, err := rand.Read(salt); err != nil {
		return fmt.Errorf("auth: generate salt: %w", err)
	}
	hash := pbkdf2Key([]byte(password), salt)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.users[name]; exists {
		return ErrUserExists
	}
	s.users[name] = &user{
		name:   name,
		groups: make(map[string]bool),
		salt:   salt,
		hash:   hash,
	}
	return nil
}

// SetPublicKey attaches the user's ECDSA public key (from their grid
// certificate) for signature authentication.
func (s *Store) SetPublicKey(name string, pub *ecdsa.PublicKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return ErrNoSuchUser
	}
	u.pubKey = pub
	return nil
}

// AddToGroup puts the user in a group.
func (s *Store) AddToGroup(name, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return ErrNoSuchUser
	}
	u.groups[group] = true
	return nil
}

// GrantUser gives one user a permission.
func (s *Store) GrantUser(name string, perm Permission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return ErrNoSuchUser
	}
	u.perms = append(u.perms, perm)
	return nil
}

// GrantGroup gives every member of a group a permission.
func (s *Store) GrantGroup(group string, perm Permission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groupPerms[group] = append(s.groupPerms[group], perm)
}

// Groups returns the groups a user belongs to.
func (s *Store) Groups(name string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[name]
	if !ok {
		return nil
	}
	groups := make([]string, 0, len(u.groups))
	for g := range u.groups {
		groups = append(groups, g)
	}
	return groups
}

// VerifyPassword checks a userid/password pair. This is a deliberately
// expensive operation (PBKDF2) counted under metrics.AuthOps.
func (s *Store) VerifyPassword(name, password string) error {
	s.reg.Counter(metrics.AuthOps).Inc()
	s.mu.RLock()
	u, ok := s.users[name]
	var salt, want []byte
	if ok {
		salt = u.salt
		want = u.hash
	}
	s.mu.RUnlock()
	if !ok {
		// Burn the same work for unknown users to level timing.
		_ = pbkdf2Key([]byte(password), make([]byte, saltSize))
		return ErrInvalidCredentials
	}
	got := pbkdf2Key([]byte(password), salt)
	if subtle.ConstantTimeCompare(got, want) != 1 {
		return ErrInvalidCredentials
	}
	return nil
}

// NewChallenge returns a fresh random challenge for signature
// authentication.
func NewChallenge() ([]byte, error) {
	c := make([]byte, 32)
	if _, err := rand.Read(c); err != nil {
		return nil, fmt.Errorf("auth: generate challenge: %w", err)
	}
	return c, nil
}

// SignChallenge produces the user's proof over a server challenge. The
// digital-signature scheme is ECDSA over SHA-256, matching the grid CA's
// key type.
func SignChallenge(key *ecdsa.PrivateKey, challenge []byte) ([]byte, error) {
	digest := sha256.Sum256(challenge)
	sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("auth: sign challenge: %w", err)
	}
	return sig, nil
}

// VerifySignature checks a user's signature over a challenge. Counted
// under metrics.AuthOps.
func (s *Store) VerifySignature(name string, challenge, sig []byte) error {
	s.reg.Counter(metrics.AuthOps).Inc()
	s.mu.RLock()
	u, ok := s.users[name]
	var pub *ecdsa.PublicKey
	if ok {
		pub = u.pubKey
	}
	s.mu.RUnlock()
	if !ok || pub == nil {
		return ErrInvalidCredentials
	}
	digest := sha256.Sum256(challenge)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return ErrInvalidCredentials
	}
	return nil
}

// Allowed reports whether the user holds (action, resource), either
// directly or through a group. Unknown users are denied.
func (s *Store) Allowed(name, action, resource string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[name]
	if !ok {
		return fmt.Errorf("%w: user %q action %q resource %q", ErrDenied, name, action, resource)
	}
	for _, p := range u.perms {
		if p.matches(action, resource) {
			return nil
		}
	}
	for g := range u.groups {
		for _, p := range s.groupPerms[g] {
			if p.matches(action, resource) {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: user %q action %q resource %q", ErrDenied, name, action, resource)
}

// --- session tokens -------------------------------------------------------

// Token layout: user-length-prefixed name, expiry (unix seconds, 8 bytes),
// HMAC-SHA256 over the preceding bytes.

// IssueToken returns a sealed session token binding the user name to an
// expiry. Validation is cheap (one HMAC), so proxies use it to skip
// re-authentication within a session.
func (s *Store) IssueToken(name string) ([]byte, time.Time, error) {
	s.mu.RLock()
	_, ok := s.users[name]
	s.mu.RUnlock()
	if !ok {
		return nil, time.Time{}, ErrNoSuchUser
	}
	expiry := s.clock().Add(s.tokenTTL)
	tok := sealToken(s.tokenKey, name, expiry)
	return tok, expiry, nil
}

// ValidateToken verifies a token's seal and expiry, returning the user
// name. Counted under metrics.TicketOps (the cheap path of E5).
func (s *Store) ValidateToken(tok []byte) (string, error) {
	s.reg.Counter(metrics.TicketOps).Inc()
	name, expiry, err := openToken(s.tokenKey, tok)
	if err != nil {
		return "", err
	}
	if s.clock().After(expiry) {
		return "", ErrTokenInvalid
	}
	return name, nil
}

func sealToken(key []byte, name string, expiry time.Time) []byte {
	body := make([]byte, 0, 4+len(name)+8)
	body = binary.BigEndian.AppendUint32(body, uint32(len(name)))
	body = append(body, name...)
	body = binary.BigEndian.AppendUint64(body, uint64(expiry.Unix()))
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return mac.Sum(body)
}

func openToken(key, tok []byte) (string, time.Time, error) {
	if len(tok) < 4+8+sha256.Size {
		return "", time.Time{}, ErrTokenInvalid
	}
	body, sum := tok[:len(tok)-sha256.Size], tok[len(tok)-sha256.Size:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return "", time.Time{}, ErrTokenInvalid
	}
	nameLen := binary.BigEndian.Uint32(body[:4])
	if int(nameLen) != len(body)-4-8 {
		return "", time.Time{}, ErrTokenInvalid
	}
	name := string(body[4 : 4+nameLen])
	expiry := time.Unix(int64(binary.BigEndian.Uint64(body[4+nameLen:])), 0)
	return name, expiry, nil
}

// pbkdf2Key derives a key from password and salt with HMAC-SHA256
// (PBKDF2, RFC 2898) — implemented here because the repository is
// stdlib-only.
func pbkdf2Key(password, salt []byte) []byte {
	prf := hmac.New(sha256.New, password)
	// Single output block suffices for a 32-byte key with SHA-256.
	var block [4]byte
	binary.BigEndian.PutUint32(block[:], 1)
	prf.Write(salt)
	prf.Write(block[:])
	u := prf.Sum(nil)
	out := make([]byte, len(u))
	copy(out, u)
	for i := 1; i < pbkdf2Iterations; i++ {
		prf.Reset()
		prf.Write(u)
		u = prf.Sum(u[:0])
		for j := range out {
			out[j] ^= u[j]
		}
	}
	return out[:keySize]
}
