package auth

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"gridproxy/internal/metrics"
)

func newStore(t *testing.T, opts ...StoreOption) *Store {
	t.Helper()
	s, err := NewStore(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPasswordVerification(t *testing.T) {
	s := newStore(t)
	if err := s.AddUser("alice", "correct horse"); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyPassword("alice", "correct horse"); err != nil {
		t.Errorf("valid password rejected: %v", err)
	}
	if err := s.VerifyPassword("alice", "wrong"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("wrong password: %v", err)
	}
	if err := s.VerifyPassword("mallory", "correct horse"); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("unknown user: %v", err)
	}
}

func TestDuplicateUser(t *testing.T) {
	s := newStore(t)
	if err := s.AddUser("alice", "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUser("alice", "y"); !errors.Is(err, ErrUserExists) {
		t.Errorf("duplicate AddUser = %v", err)
	}
}

func TestSignatureAuthentication(t *testing.T) {
	s := newStore(t)
	if err := s.AddUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetPublicKey("bob", &key.PublicKey); err != nil {
		t.Fatal(err)
	}
	challenge, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := SignChallenge(key, challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifySignature("bob", challenge, sig); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	// Wrong challenge.
	other, _ := NewChallenge()
	if err := s.VerifySignature("bob", other, sig); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("signature over wrong challenge accepted: %v", err)
	}
	// Wrong key.
	otherKey, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	badSig, _ := SignChallenge(otherKey, challenge)
	if err := s.VerifySignature("bob", challenge, badSig); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("foreign signature accepted: %v", err)
	}
	// User without a key.
	if err := s.AddUser("nokey", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifySignature("nokey", challenge, sig); !errors.Is(err, ErrInvalidCredentials) {
		t.Errorf("keyless user accepted: %v", err)
	}
}

func TestPermissions(t *testing.T) {
	s := newStore(t)
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := s.AddUser(u, "pw"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.GrantUser("alice", Permission{Action: "submit", Resource: "site:A"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToGroup("bob", "researchers"); err != nil {
		t.Fatal(err)
	}
	s.GrantGroup("researchers", Permission{Action: "status", Resource: "*"})

	tests := []struct {
		user, action, resource string
		want                   bool
	}{
		{"alice", "submit", "site:A", true},
		{"alice", "submit", "site:B", false},
		{"alice", "status", "site:A", false},
		{"bob", "status", "site:A", true},
		{"bob", "status", "site:B", true},
		{"bob", "submit", "site:A", false},
		{"carol", "status", "site:A", false},
		{"nobody", "status", "site:A", false},
	}
	for _, tt := range tests {
		err := s.Allowed(tt.user, tt.action, tt.resource)
		if got := err == nil; got != tt.want {
			t.Errorf("Allowed(%s,%s,%s) = %v, want %v", tt.user, tt.action, tt.resource, err, tt.want)
		}
		if err != nil && !errors.Is(err, ErrDenied) {
			t.Errorf("denial error not ErrDenied: %v", err)
		}
	}
}

func TestWildcardPatterns(t *testing.T) {
	tests := []struct {
		pattern, value string
		want           bool
	}{
		{"*", "anything", true},
		{"submit", "submit", true},
		{"submit", "status", false},
		{"site:*", "site:A", true},
		{"site:*", "node:A", false},
		{"site:A", "site:AB", false},
	}
	for _, tt := range tests {
		if got := matchPattern(tt.pattern, tt.value); got != tt.want {
			t.Errorf("matchPattern(%q,%q) = %v, want %v", tt.pattern, tt.value, got, tt.want)
		}
	}
}

func TestTokens(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	s := newStore(t, WithClock(clock), WithTokenLifetime(time.Hour))
	if err := s.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	tok, expiry, err := s.IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !expiry.Equal(now.Add(time.Hour)) {
		t.Errorf("expiry = %v", expiry)
	}
	name, err := s.ValidateToken(tok)
	if err != nil || name != "alice" {
		t.Errorf("ValidateToken = %q, %v", name, err)
	}
	// Expired.
	now = now.Add(2 * time.Hour)
	if _, err := s.ValidateToken(tok); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("expired token: %v", err)
	}
	now = now.Add(-2 * time.Hour)
	// Tampered.
	tok[0] ^= 0xFF
	if _, err := s.ValidateToken(tok); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("tampered token: %v", err)
	}
	// Unknown user cannot get a token.
	if _, _, err := s.IssueToken("mallory"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("IssueToken unknown = %v", err)
	}
}

func TestTokensNotValidAcrossStores(t *testing.T) {
	s1 := newStore(t)
	s2 := newStore(t)
	if err := s1.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s2.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	tok, _, err := s1.IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ValidateToken(tok); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("token from another store accepted: %v", err)
	}
}

func TestQuickForgedTokensRejected(t *testing.T) {
	s := newStore(t)
	if err := s.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	f := func(garbage []byte) bool {
		_, err := s.ValidateToken(garbage)
		return errors.Is(err, ErrTokenInvalid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAuthOpsCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newStore(t, WithMetrics(reg))
	if err := s.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	_ = s.VerifyPassword("alice", "pw")
	_ = s.VerifyPassword("alice", "bad")
	tok, _, _ := s.IssueToken("alice")
	_, _ = s.ValidateToken(tok)
	if got := reg.Counter(metrics.AuthOps).Value(); got != 2 {
		t.Errorf("AuthOps = %d, want 2", got)
	}
	if got := reg.Counter(metrics.TicketOps).Value(); got != 1 {
		t.Errorf("TicketOps = %d, want 1", got)
	}
}

func TestGroups(t *testing.T) {
	s := newStore(t)
	if err := s.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToGroup("alice", "g1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToGroup("alice", "g2"); err != nil {
		t.Fatal(err)
	}
	groups := s.Groups("alice")
	if len(groups) != 2 {
		t.Errorf("Groups = %v", groups)
	}
	if got := s.Groups("nobody"); got != nil {
		t.Errorf("Groups(nobody) = %v", got)
	}
	if err := s.AddToGroup("nobody", "g"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("AddToGroup unknown = %v", err)
	}
}

func TestPBKDF2Deterministic(t *testing.T) {
	salt := []byte("0123456789abcdef")
	k1 := pbkdf2Key([]byte("pw"), salt)
	k2 := pbkdf2Key([]byte("pw"), salt)
	if string(k1) != string(k2) {
		t.Error("pbkdf2 not deterministic")
	}
	k3 := pbkdf2Key([]byte("pw"), []byte("fedcba9876543210"))
	if string(k1) == string(k3) {
		t.Error("different salts produced same key")
	}
	k4 := pbkdf2Key([]byte("pw2"), salt)
	if string(k1) == string(k4) {
		t.Error("different passwords produced same key")
	}
	if len(k1) != keySize {
		t.Errorf("key size = %d", len(k1))
	}
}
