// Package node implements the grid node agent: the software that runs on
// every workstation or cluster node inside a site.
//
// The paper's key deployment claim is that nodes need almost nothing
// installed ("apart from the MPI and the introduction of a proxy server at
// the sites, the installation of an additional module at the client is
// unnecessary"). Accordingly the agent is small: it executes registered
// programs as processes, reports CPU/RAM/disk status to its site proxy
// (monitor layer), and exposes per-process endpoints on the site-local
// network. It knows nothing about other sites, TLS, or the control
// protocol spoken between proxies.
//
// Programs are Go functions registered by name — the in-process equivalent
// of binaries installed on the node. An MPI program receives its rank,
// world size and rank table through Env and joins the computation with
// package mpi; the agent itself is MPI-agnostic, mirroring the paper's
// external (non-intrusive) MPI support.
package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gridproxy/internal/logging"
	"gridproxy/internal/monitor"
	"gridproxy/internal/transport"
)

// Package errors.
var (
	// ErrUnknownProgram is returned by Spawn for unregistered programs.
	ErrUnknownProgram = errors.New("node: unknown program")
	// ErrStopped is returned after the agent shut down.
	ErrStopped = errors.New("node: agent stopped")
)

// HWProfile describes the node's (simulated) hardware. The simulator
// assigns heterogeneous profiles; a real port would sample the OS instead.
type HWProfile struct {
	// Speed is relative compute speed (1.0 = reference node).
	Speed float64
	// RAMMB and DiskMB are total capacities.
	RAMMB  int64
	DiskMB int64
	// RAMPerProcMB approximates memory consumed per running process.
	RAMPerProcMB int64
}

// DefaultHW is a plain reference node.
var DefaultHW = HWProfile{Speed: 1.0, RAMMB: 2048, DiskMB: 64 << 10, RAMPerProcMB: 64}

// Env is what a spawned program sees.
type Env struct {
	// Node and Site identify where the process runs.
	Node string
	Site string
	// AppID is the grid-wide application id (one proxy address space).
	AppID string
	// Rank and WorldSize position the process in its application; Rank
	// is -1 for non-parallel jobs.
	Rank      int
	WorldSize int
	// Args are the program arguments.
	Args []string
	// RankTable maps every rank to the address this process should dial
	// to reach it: a site-local node endpoint for local ranks, a
	// virtual-slave endpoint on the site proxy for remote ranks. The
	// process cannot tell which is which — the paper's transparency.
	RankTable map[int]string
	// ListenAddr is where this process accepts connections from peers.
	ListenAddr string
	// Network is the site-local network.
	Network transport.Network
	// Speed is the node's relative speed, for simulated workloads.
	Speed float64
	// Input resolves a staged input file by name out of the site's blob
	// store; nil when the launch staged nothing in. Prefer StagedInput.
	Input func(name string) ([]byte, bool)
	// Publish stores an output blob at the site proxy so it can flow
	// back to the origin when the job finishes; nil when the launch has
	// no data plane attached. Prefer PublishOutput.
	Publish func(name string, data []byte) error
}

// StagedInput resolves a staged input file by name; ok is false when the
// name was not staged in (or the launch had no data plane).
func (e Env) StagedInput(name string) ([]byte, bool) {
	if e.Input == nil {
		return nil, false
	}
	return e.Input(name)
}

// PublishOutput records an output blob for staging back to the origin
// site when the job completes.
func (e Env) PublishOutput(name string, data []byte) error {
	if e.Publish == nil {
		return errors.New("node: no data plane attached to this process")
	}
	return e.Publish(name, data)
}

// ProgramFunc is an installed program. The context is cancelled when the
// process is killed or the agent stops.
type ProgramFunc func(ctx context.Context, env Env) error

// SpawnSpec asks the agent to start one process.
type SpawnSpec struct {
	AppID     string
	Program   string
	Args      []string
	Rank      int
	WorldSize int
	RankTable map[int]string
	// Input and Publish are the data-plane hooks copied into Env (both
	// optional; see Env.Input and Env.Publish).
	Input   func(name string) ([]byte, bool)
	Publish func(name string, data []byte) error
}

// ProcessState reports one running or finished process.
type ProcessState struct {
	AppID   string
	Program string
	Rank    int
	Started time.Time
	Done    bool
	Err     error
}

type process struct {
	spec    SpawnSpec
	started time.Time
	cancel  context.CancelFunc
	done    chan struct{}
	err     error
}

// Agent is one grid node. Create with New, register programs, then Spawn.
// It is safe for concurrent use.
type Agent struct {
	name    string
	site    string
	network transport.Network
	hw      HWProfile
	log     *logging.Logger
	clock   func() time.Time

	mu       sync.Mutex
	programs map[string]ProgramFunc
	procs    map[string]*process // key: appID/rank
	stopped  bool
	wg       sync.WaitGroup
}

// Option configures an Agent.
type Option func(*Agent)

// WithHW sets the hardware profile (default DefaultHW).
func WithHW(hw HWProfile) Option { return func(a *Agent) { a.hw = hw } }

// WithLogger attaches a logger.
func WithLogger(log *logging.Logger) Option { return func(a *Agent) { a.log = log } }

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option { return func(a *Agent) { a.clock = clock } }

// New creates an agent named name in site, attached to the site-local
// network.
func New(name, site string, network transport.Network, opts ...Option) *Agent {
	a := &Agent{
		name:     name,
		site:     site,
		network:  network,
		hw:       DefaultHW,
		clock:    time.Now,
		programs: make(map[string]ProgramFunc),
		procs:    make(map[string]*process),
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Name returns the node name.
func (a *Agent) Name() string { return a.name }

// Site returns the node's site.
func (a *Agent) Site() string { return a.site }

// HW returns the node's hardware profile.
func (a *Agent) HW() HWProfile { return a.hw }

// Speed returns the node's relative compute speed (scheduler input).
func (a *Agent) Speed() float64 { return a.hw.Speed }

// RegisterProgram installs a program under name, replacing any previous
// registration.
func (a *Agent) RegisterProgram(name string, fn ProgramFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.programs[name] = fn
}

// Programs returns the installed program names, sorted.
func (a *Agent) Programs() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.programs))
	for name := range a.programs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EndpointAddr returns the site-local address where a given rank of an
// application listens on a node. The layout "<node>/<app>/r<rank>" keeps
// per-application address spaces disjoint; proxies compute the same
// addresses when splicing tunnel streams to real ranks.
func EndpointAddr(nodeName, appID string, rank int) string {
	return fmt.Sprintf("%s/%s/r%d", nodeName, appID, rank)
}

// EndpointAddr returns the endpoint address of (app, rank) on this node.
func (a *Agent) EndpointAddr(appID string, rank int) string {
	return EndpointAddr(a.name, appID, rank)
}

// Spawn starts a process for spec and returns the site-local endpoint where
// it listens. The process runs until its program returns or Kill/Stop.
func (a *Agent) Spawn(ctx context.Context, spec SpawnSpec) (string, error) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return "", ErrStopped
	}
	fn, ok := a.programs[spec.Program]
	if !ok {
		a.mu.Unlock()
		return "", fmt.Errorf("%w: %q on node %s", ErrUnknownProgram, spec.Program, a.name)
	}
	key := procKey(spec.AppID, spec.Rank)
	if _, dup := a.procs[key]; dup {
		a.mu.Unlock()
		return "", fmt.Errorf("node: %s already running %s", a.name, key)
	}
	procCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	p := &process{
		spec:    spec,
		started: a.clock(),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	a.procs[key] = p
	a.wg.Add(1)
	a.mu.Unlock()

	endpoint := a.EndpointAddr(spec.AppID, spec.Rank)
	env := Env{
		Node:       a.name,
		Site:       a.site,
		AppID:      spec.AppID,
		Rank:       spec.Rank,
		WorldSize:  spec.WorldSize,
		Args:       spec.Args,
		RankTable:  spec.RankTable,
		ListenAddr: endpoint,
		Network:    a.network,
		Speed:      a.hw.Speed,
		Input:      spec.Input,
		Publish:    spec.Publish,
	}
	go func() {
		defer a.wg.Done()
		defer close(p.done)
		defer cancel()
		err := fn(procCtx, env)
		a.mu.Lock()
		p.err = err
		a.mu.Unlock()
		if err != nil {
			a.log.Warn("process failed", "node", a.name, "app", spec.AppID, "rank", spec.Rank, "err", err)
		} else {
			a.log.Debug("process done", "node", a.name, "app", spec.AppID, "rank", spec.Rank)
		}
	}()
	return endpoint, nil
}

// Wait blocks until the given process finishes and returns its error.
func (a *Agent) Wait(ctx context.Context, appID string, rank int) error {
	a.mu.Lock()
	p, ok := a.procs[procKey(appID, rank)]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("node: no process %s/r%d on %s", appID, rank, a.name)
	}
	select {
	case <-p.done:
		a.mu.Lock()
		defer a.mu.Unlock()
		return p.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill cancels a process's context.
func (a *Agent) Kill(appID string, rank int) error {
	a.mu.Lock()
	p, ok := a.procs[procKey(appID, rank)]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("node: no process %s/r%d on %s", appID, rank, a.name)
	}
	p.cancel()
	return nil
}

// Release forgets a finished process, freeing its (app, rank) slot.
func (a *Agent) Release(appID string, rank int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := procKey(appID, rank)
	if p, ok := a.procs[key]; ok {
		select {
		case <-p.done:
			delete(a.procs, key)
		default:
			// Still running; keep it.
		}
	}
}

// Processes lists process states sorted by (app, rank).
func (a *Agent) Processes() []ProcessState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ProcessState, 0, len(a.procs))
	for _, p := range a.procs {
		state := ProcessState{
			AppID:   p.spec.AppID,
			Program: p.spec.Program,
			Rank:    p.spec.Rank,
			Started: p.started,
		}
		select {
		case <-p.done:
			state.Done = true
			state.Err = p.err
		default:
		}
		out = append(out, state)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AppID != out[j].AppID {
			return out[i].AppID < out[j].AppID
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// runningCount returns the number of live processes.
func (a *Agent) runningCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, p := range a.procs {
		select {
		case <-p.done:
		default:
			n++
		}
	}
	return n
}

// Stats samples the node's current status for the monitor layer. Values
// derive from the hardware profile and the live process count.
func (a *Agent) Stats() monitor.NodeStats {
	running := a.runningCount()
	ramUsed := int64(running) * a.hw.RAMPerProcMB
	ramFree := a.hw.RAMMB - ramUsed
	if ramFree < 0 {
		ramFree = 0
	}
	load := float64(running) / a.hw.Speed
	cpuFree := 100 - 100*load
	if cpuFree < 0 {
		cpuFree = 0
	}
	return monitor.NodeStats{
		Node:       a.name,
		CPUFreePct: cpuFree,
		RAMFreeMB:  ramFree,
		DiskFreeMB: a.hw.DiskMB,
		Load1:      load,
		Procs:      running,
		Collected:  a.clock(),
	}
}

// Stop kills every process and waits for them to exit.
func (a *Agent) Stop() {
	a.mu.Lock()
	a.stopped = true
	procs := make([]*process, 0, len(a.procs))
	for _, p := range a.procs {
		procs = append(procs, p)
	}
	a.mu.Unlock()
	for _, p := range procs {
		p.cancel()
	}
	a.wg.Wait()
}

func procKey(appID string, rank int) string {
	return fmt.Sprintf("%s/r%d", appID, rank)
}
