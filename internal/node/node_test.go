package node

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gridproxy/internal/transport"
)

func newAgent(t *testing.T, opts ...Option) *Agent {
	t.Helper()
	a := New("n1", "sitea", transport.NewMemNetwork(), opts...)
	t.Cleanup(a.Stop)
	return a
}

func TestSpawnRunsProgram(t *testing.T) {
	a := newAgent(t)
	ran := make(chan Env, 1)
	a.RegisterProgram("hello", func(ctx context.Context, env Env) error {
		ran <- env
		return nil
	})
	ctx := context.Background()
	endpoint, err := a.Spawn(ctx, SpawnSpec{
		AppID: "app1", Program: "hello", Args: []string{"x"},
		Rank: 2, WorldSize: 4, RankTable: map[int]string{0: "r0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if endpoint != "n1/app1/r2" {
		t.Errorf("endpoint = %q", endpoint)
	}
	select {
	case env := <-ran:
		if env.Node != "n1" || env.Site != "sitea" || env.Rank != 2 ||
			env.WorldSize != 4 || env.ListenAddr != endpoint || len(env.Args) != 1 {
			t.Errorf("env = %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("program never ran")
	}
	if err := a.Wait(ctx, "app1", 2); err != nil {
		t.Errorf("Wait = %v", err)
	}
}

func TestSpawnUnknownProgram(t *testing.T) {
	a := newAgent(t)
	_, err := a.Spawn(context.Background(), SpawnSpec{AppID: "a", Program: "ghost"})
	if !errors.Is(err, ErrUnknownProgram) {
		t.Errorf("err = %v", err)
	}
}

func TestSpawnDuplicateSlot(t *testing.T) {
	a := newAgent(t)
	block := make(chan struct{})
	a.RegisterProgram("p", func(ctx context.Context, env Env) error {
		<-block
		return nil
	})
	defer close(block)
	ctx := context.Background()
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p", Rank: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p", Rank: 0}); err == nil {
		t.Error("duplicate (app, rank) accepted")
	}
	// Different rank is fine.
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p", Rank: 1}); err != nil {
		t.Errorf("second rank: %v", err)
	}
}

func TestWaitReturnsProgramError(t *testing.T) {
	a := newAgent(t)
	boom := errors.New("boom")
	a.RegisterProgram("fail", func(ctx context.Context, env Env) error { return boom })
	ctx := context.Background()
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "fail"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(ctx, "a", 0); !errors.Is(err, boom) {
		t.Errorf("Wait = %v", err)
	}
}

func TestKillCancelsContext(t *testing.T) {
	a := newAgent(t)
	started := make(chan struct{})
	a.RegisterProgram("sleep", func(ctx context.Context, env Env) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	ctx := context.Background()
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "sleep"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := a.Kill("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(ctx, "a", 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait after Kill = %v", err)
	}
}

func TestStatsReflectLoad(t *testing.T) {
	hw := HWProfile{Speed: 2, RAMMB: 1000, DiskMB: 5000, RAMPerProcMB: 100}
	a := newAgent(t, WithHW(hw))
	idle := a.Stats()
	if idle.Procs != 0 || idle.RAMFreeMB != 1000 || idle.CPUFreePct != 100 || idle.DiskFreeMB != 5000 {
		t.Errorf("idle stats = %+v", idle)
	}
	block := make(chan struct{})
	a.RegisterProgram("p", func(ctx context.Context, env Env) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p", Rank: i}); err != nil {
			t.Fatal(err)
		}
	}
	busy := a.Stats()
	if busy.Procs != 3 {
		t.Errorf("Procs = %d", busy.Procs)
	}
	if busy.RAMFreeMB != 700 {
		t.Errorf("RAMFreeMB = %d", busy.RAMFreeMB)
	}
	if busy.Load1 != 1.5 { // 3 procs / speed 2
		t.Errorf("Load1 = %v", busy.Load1)
	}
	close(block)
	for i := 0; i < 3; i++ {
		if err := a.Wait(ctx, "a", i); err != nil {
			t.Fatal(err)
		}
	}
	after := a.Stats()
	if after.Procs != 0 {
		t.Errorf("Procs after completion = %d", after.Procs)
	}
}

func TestReleaseFreesSlot(t *testing.T) {
	a := newAgent(t)
	a.RegisterProgram("quick", func(ctx context.Context, env Env) error { return nil })
	ctx := context.Background()
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "quick"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	a.Release("a", 0)
	// Slot reusable after release.
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "quick"}); err != nil {
		t.Errorf("respawn after release: %v", err)
	}
}

func TestReleaseKeepsRunningProcess(t *testing.T) {
	a := newAgent(t)
	block := make(chan struct{})
	defer close(block)
	a.RegisterProgram("p", func(ctx context.Context, env Env) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	ctx := context.Background()
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p"}); err != nil {
		t.Fatal(err)
	}
	a.Release("a", 0) // must be a no-op while running
	procs := a.Processes()
	if len(procs) != 1 || procs[0].Done {
		t.Errorf("processes = %+v", procs)
	}
}

func TestStopKillsEverything(t *testing.T) {
	a := New("n1", "s", transport.NewMemNetwork())
	var cancelled atomic.Int32
	a.RegisterProgram("p", func(ctx context.Context, env Env) error {
		<-ctx.Done()
		cancelled.Add(1)
		return ctx.Err()
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := a.Spawn(ctx, SpawnSpec{AppID: "a", Program: "p", Rank: i}); err != nil {
			t.Fatal(err)
		}
	}
	a.Stop()
	if got := cancelled.Load(); got != 5 {
		t.Errorf("cancelled = %d, want 5", got)
	}
	if _, err := a.Spawn(ctx, SpawnSpec{AppID: "b", Program: "p"}); !errors.Is(err, ErrStopped) {
		t.Errorf("spawn after stop = %v", err)
	}
}

func TestProcessesListing(t *testing.T) {
	a := newAgent(t)
	a.RegisterProgram("quick", func(ctx context.Context, env Env) error { return nil })
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := a.Spawn(ctx, SpawnSpec{AppID: fmt.Sprintf("app%d", i), Program: "quick"}); err != nil {
			t.Fatal(err)
		}
		if err := a.Wait(ctx, fmt.Sprintf("app%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	procs := a.Processes()
	if len(procs) != 3 {
		t.Fatalf("processes = %d", len(procs))
	}
	for i, p := range procs {
		if p.AppID != fmt.Sprintf("app%d", i) || !p.Done || p.Err != nil {
			t.Errorf("proc[%d] = %+v", i, p)
		}
	}
}

func TestEndpointAddrStable(t *testing.T) {
	if got := EndpointAddr("node7", "appX", 3); got != "node7/appX/r3" {
		t.Errorf("EndpointAddr = %q", got)
	}
}
