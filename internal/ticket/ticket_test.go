package ticket

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/metrics"
)

type fixture struct {
	store *auth.Store
	tgs   *GrantingService
	now   *time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	f := &fixture{now: &now}
	clock := func() time.Time { return *f.now }
	store, err := auth.NewStore(auth.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddToGroup("alice", "researchers"); err != nil {
		t.Fatal(err)
	}
	tgs, err := NewGrantingService(store, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	f.store = store
	f.tgs = tgs
	return f
}

func TestSignOnAndTicketFlow(t *testing.T) {
	f := newFixture(t)
	key, err := f.tgs.RegisterService("proxy:siteB")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatalf("SignOnPassword: %v", err)
	}
	tick, err := f.tgs.GrantTicket(tgt, "proxy:siteB")
	if err != nil {
		t.Fatalf("GrantTicket: %v", err)
	}
	v := NewValidator("proxy:siteB", key, nil).WithValidatorClock(func() time.Time { return *f.now })
	claims, err := v.Validate(tick)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if claims.User != "alice" || claims.Service != "proxy:siteB" {
		t.Errorf("claims = %+v", claims)
	}
	if len(claims.Groups) != 1 || claims.Groups[0] != "researchers" {
		t.Errorf("groups = %v", claims.Groups)
	}
}

func TestSignOnWrongPassword(t *testing.T) {
	f := newFixture(t)
	if _, err := f.tgs.SignOnPassword("alice", "wrong"); !errors.Is(err, auth.ErrInvalidCredentials) {
		t.Errorf("wrong password sign-on: %v", err)
	}
}

func TestTicketForUnknownService(t *testing.T) {
	f := newFixture(t)
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.tgs.GrantTicket(tgt, "no-such"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown service: %v", err)
	}
}

func TestTicketWrongService(t *testing.T) {
	f := newFixture(t)
	keyB, err := f.tgs.RegisterService("proxy:siteB")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.tgs.RegisterService("proxy:siteC"); err != nil {
		t.Fatal(err)
	}
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	tickC, err := f.tgs.GrantTicket(tgt, "proxy:siteC")
	if err != nil {
		t.Fatal(err)
	}
	// Ticket for C presented to B: sealed with a different key, so it
	// fails MAC validation.
	vB := NewValidator("proxy:siteB", keyB, nil).WithValidatorClock(func() time.Time { return *f.now })
	if _, err := vB.Validate(tickC); err == nil {
		t.Error("ticket for service C accepted by service B")
	}
}

func TestExpiredTGT(t *testing.T) {
	f := newFixture(t)
	if _, err := f.tgs.RegisterService("svc"); err != nil {
		t.Fatal(err)
	}
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	*f.now = f.now.Add(DefaultTGTLifetime + time.Minute)
	if _, err := f.tgs.GrantTicket(tgt, "svc"); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("expired TGT: %v", err)
	}
}

func TestExpiredSessionTicket(t *testing.T) {
	f := newFixture(t)
	key, err := f.tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	tick, err := f.tgs.GrantTicket(tgt, "svc")
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator("svc", key, nil).WithValidatorClock(func() time.Time { return *f.now })
	if _, err := v.Validate(tick); err != nil {
		t.Fatalf("fresh ticket: %v", err)
	}
	*f.now = f.now.Add(DefaultTicketLifetime + time.Minute)
	if _, err := v.Validate(tick); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("expired ticket: %v", err)
	}
}

func TestTGTNotUsableAsSessionTicket(t *testing.T) {
	f := newFixture(t)
	key, err := f.tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := f.tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator("svc", key, nil)
	if _, err := v.Validate(tgt); err == nil {
		t.Error("raw TGT accepted as session ticket")
	}
}

func TestSignOnSignature(t *testing.T) {
	f := newFixture(t)
	// Attach a key pair to alice.
	chal, err := auth.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	cred := generateKey(t)
	if err := f.store.SetPublicKey("alice", &cred.PublicKey); err != nil {
		t.Fatal(err)
	}
	sig, err := auth.SignChallenge(cred, chal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.tgs.SignOnSignature("alice", chal, sig); err != nil {
		t.Errorf("signature sign-on failed: %v", err)
	}
	if _, err := f.tgs.SignOnSignature("alice", chal, []byte("garbage")); err == nil {
		t.Error("garbage signature accepted")
	}
}

func TestQuickForgedTicketsRejected(t *testing.T) {
	f := newFixture(t)
	key, err := f.tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator("svc", key, nil)
	fn := func(garbage []byte) bool {
		_, err := v.Validate(garbage)
		return err != nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegisterServiceIdempotent(t *testing.T) {
	f := newFixture(t)
	k1, err := f.tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := f.tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) != string(k2) {
		t.Error("RegisterService not idempotent")
	}
}

func TestTicketOpsCounted(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	reg := metrics.NewRegistry()
	store, err := auth.NewStore(auth.WithClock(clock), auth.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	tgs, err := NewGrantingService(store, WithClock(clock), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	key, err := tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tgs.SignOnPassword("alice", "pw") // 1 AuthOp
	if err != nil {
		t.Fatal(err)
	}
	tick, err := tgs.GrantTicket(tgt, "svc") // 1 TicketOp
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator("svc", key, reg).WithValidatorClock(clock)
	for i := 0; i < 5; i++ { // 5 TicketOps
		if _, err := v.Validate(tick); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(metrics.AuthOps).Value(); got != 1 {
		t.Errorf("AuthOps = %d, want 1 (single sign-on)", got)
	}
	if got := reg.Counter(metrics.TicketOps).Value(); got != 6 {
		t.Errorf("TicketOps = %d, want 6", got)
	}
}

// generateKey returns a fresh ECDSA key for signature tests.
func generateKey(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestClockSkewTolerance covers the WithSkew/WithValidatorSkew knobs: a
// ticket just past its expiry is still accepted within the tolerance,
// and still refused beyond it — absorbing drift between the TGS host
// and a validating proxy without loosening exact-expiry deployments.
func TestClockSkewTolerance(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	store, err := auth.NewStore(auth.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	tgs, err := NewGrantingService(store, WithClock(clock), WithSkew(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	key, err := tgs.RegisterService("svc")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tgs.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	tick, err := tgs.GrantTicket(tgt, "svc")
	if err != nil {
		t.Fatal(err)
	}

	strict := NewValidator("svc", key, nil).WithValidatorClock(clock)
	lenient := strict.WithValidatorSkew(time.Minute)

	// 30s past expiry: within the minute of tolerated drift.
	now = now.Add(DefaultTicketLifetime + 30*time.Second)
	if _, err := strict.Validate(tick); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("strict validator within skew = %v", err)
	}
	if _, err := lenient.Validate(tick); err != nil {
		t.Errorf("lenient validator within skew = %v", err)
	}

	// 2m past expiry: beyond the tolerance for both.
	now = now.Add(90 * time.Second)
	if _, err := lenient.Validate(tick); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("lenient validator beyond skew = %v", err)
	}

	// The TGS applies the same tolerance to TGT checks in GrantTicket.
	now = time.Unix(1_700_000_000, 0).Add(DefaultTGTLifetime + 30*time.Second)
	if _, err := tgs.GrantTicket(tgt, "svc"); err != nil {
		t.Errorf("GrantTicket within TGT skew = %v", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := tgs.GrantTicket(tgt, "svc"); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("GrantTicket beyond TGT skew = %v", err)
	}
}

// TestMasterKeyDerivation covers WithMasterKey: two granting services
// built from the same secret derive identical service keys, so a ticket
// granted by one validates against a key registered with the other — the
// gridgate/gridproxyd interop contract. A different secret does not.
func TestMasterKeyDerivation(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	store, err := auth.NewStore(auth.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	newTGS := func(secret string) *GrantingService {
		tgs, err := NewGrantingService(store, WithClock(clock), WithMasterKey([]byte(secret)))
		if err != nil {
			t.Fatal(err)
		}
		return tgs
	}
	a, b := newTGS("shared"), newTGS("shared")

	keyA, err := a.RegisterService("proxy:sitea")
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := b.RegisterService("proxy:sitea")
	if err != nil {
		t.Fatal(err)
	}
	if string(keyA) != string(keyB) {
		t.Fatal("same secret derived different service keys")
	}

	// A grants; a validator keyed by b accepts. TGTs interop too: a TGT
	// issued by a is honoured by b.
	tgt, err := a.SignOnPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	tick, err := a.GrantTicket(tgt, "proxy:sitea")
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator("proxy:sitea", keyB, nil).WithValidatorClock(clock)
	if _, err := v.Validate(tick); err != nil {
		t.Errorf("cross-process validate = %v", err)
	}
	if _, err := b.GrantTicket(tgt, "proxy:sitea"); err != nil {
		t.Errorf("cross-process TGT = %v", err)
	}

	// Different secrets share nothing.
	other, err := newTGS("different").RegisterService("proxy:sitea")
	if err != nil {
		t.Fatal(err)
	}
	if string(other) == string(keyA) {
		t.Error("different secrets derived the same key")
	}
	vOther := NewValidator("proxy:sitea", other, nil).WithValidatorClock(clock)
	if _, err := vOther.Validate(tick); !errors.Is(err, ErrInvalidTicket) {
		t.Errorf("wrong-secret validate = %v", err)
	}
}
