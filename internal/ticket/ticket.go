// Package ticket implements the Kerberos-style single-sign-on the paper
// foresees as the replacement for per-request authentication: "a
// recognized authentication standard such as Kerberos, which requires a
// single authentication per session, with the access rights stored safely
// in a ticket and reused transparently, without the need for user
// intervention."
//
// The model follows Kerberos in miniature, built from stdlib HMAC:
//
//   - The Granting Service (TGS) authenticates a user once (password or
//     signature via an auth.Store) and issues a Ticket-Granting Ticket
//     (TGT) sealed with the TGS master key.
//   - Holding a TGT, the client requests Session Tickets for named
//     services ("proxy:siteB"). Each session ticket is sealed with that
//     service's key, carries the user's name, groups, and expiry, and is
//     validated by the service with one HMAC — no user interaction and no
//     expensive public-key or password operation.
package ticket

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/metrics"
	"gridproxy/internal/wire"
)

// Lifetimes.
const (
	// DefaultTGTLifetime is how long a sign-on lasts.
	DefaultTGTLifetime = 10 * time.Hour
	// DefaultTicketLifetime is how long one service ticket lasts.
	DefaultTicketLifetime = 1 * time.Hour
	keySize               = 32
)

// Package errors.
var (
	// ErrInvalidTicket covers forged, malformed, and expired tickets.
	ErrInvalidTicket = errors.New("ticket: invalid or expired ticket")
	// ErrUnknownService indicates a ticket request for an unregistered
	// service.
	ErrUnknownService = errors.New("ticket: unknown service")
	// ErrWrongService indicates a ticket presented to a service other
	// than the one it was issued for.
	ErrWrongService = errors.New("ticket: ticket issued for a different service")
)

// Claims is the authenticated identity a ticket conveys.
type Claims struct {
	User    string
	Groups  []string
	Service string
	Expiry  time.Time
}

// GrantingService is the grid's TGS. One instance runs alongside a
// designated proxy; services share per-service keys with it out of band
// (distributed with proxy configuration).
type GrantingService struct {
	mu          sync.RWMutex
	masterKey   []byte
	derive      bool
	serviceKeys map[string][]byte
	users       *auth.Store
	clock       func() time.Time
	reg         *metrics.Registry
	tgtTTL      time.Duration
	ticketTTL   time.Duration
	skew        time.Duration
}

// Option configures a GrantingService.
type Option func(*GrantingService)

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option {
	return func(g *GrantingService) { g.clock = clock }
}

// WithMetrics wires in experiment counters.
func WithMetrics(reg *metrics.Registry) Option {
	return func(g *GrantingService) { g.reg = reg }
}

// WithLifetimes overrides the TGT and session-ticket lifetimes.
func WithLifetimes(tgt, ticket time.Duration) Option {
	return func(g *GrantingService) {
		g.tgtTTL = tgt
		g.ticketTTL = ticket
	}
}

// WithSkew sets the clock-skew tolerance: a ticket whose expiry lies up
// to d in the past is still accepted. Zero (the default) means exact
// expiry. The same tolerance applies to TGT checks in GrantTicket.
func WithSkew(d time.Duration) Option {
	return func(g *GrantingService) { g.skew = d }
}

// WithMasterKey replaces the random master key with one derived from
// secret, and switches RegisterService to deterministic per-service key
// derivation (HMAC of the master key over the service name). Two
// processes constructed from the same secret — e.g. a gridgate gateway
// and the gridproxyd it fronts — then agree on every service key without
// any out-of-band key exchange.
func WithMasterKey(secret []byte) Option {
	return func(g *GrantingService) {
		sum := sha256.Sum256(secret)
		g.masterKey = sum[:]
		g.derive = true
	}
}

// NewGrantingService creates a TGS that authenticates users against store.
func NewGrantingService(store *auth.Store, opts ...Option) (*GrantingService, error) {
	master := make([]byte, keySize)
	if _, err := rand.Read(master); err != nil {
		return nil, fmt.Errorf("ticket: generate master key: %w", err)
	}
	g := &GrantingService{
		masterKey:   master,
		serviceKeys: make(map[string][]byte),
		users:       store,
		clock:       time.Now,
		tgtTTL:      DefaultTGTLifetime,
		ticketTTL:   DefaultTicketLifetime,
	}
	for _, opt := range opts {
		opt(g)
	}
	return g, nil
}

// RegisterService creates (or returns the existing) key for a service. The
// returned key is handed to the service's Validator.
func (g *GrantingService) RegisterService(service string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if key, ok := g.serviceKeys[service]; ok {
		return key, nil
	}
	var key []byte
	if g.derive {
		mac := hmac.New(sha256.New, g.masterKey)
		mac.Write([]byte("service-key:" + service))
		key = mac.Sum(nil)
	} else {
		key = make([]byte, keySize)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("ticket: generate service key: %w", err)
		}
	}
	g.serviceKeys[service] = key
	return key, nil
}

// TicketLifetime reports the configured session-ticket lifetime, so a
// gateway can cap its own session expiry at the carried ticket's.
func (g *GrantingService) TicketLifetime() time.Duration { return g.ticketTTL }

// TGTClaims opens a TGT issued by this TGS and returns its claims
// without granting anything. A gateway uses it after sign-on to learn
// the user's groups for quota and rate-limit bucketing.
func (g *GrantingService) TGTClaims(tgt []byte) (Claims, error) {
	claims, err := open(g.masterKey, tgt)
	if err != nil {
		return Claims{}, err
	}
	if claims.Service != "krbtgt" || g.clock().After(claims.Expiry.Add(g.skew)) {
		return Claims{}, ErrInvalidTicket
	}
	return claims, nil
}

// SignOnPassword performs the single expensive authentication of a session
// and returns a TGT.
func (g *GrantingService) SignOnPassword(user, password string) ([]byte, error) {
	if err := g.users.VerifyPassword(user, password); err != nil {
		return nil, err
	}
	return g.issueTGT(user)
}

// SignOnSignature authenticates via challenge signature and returns a TGT.
func (g *GrantingService) SignOnSignature(user string, challenge, sig []byte) ([]byte, error) {
	if err := g.users.VerifySignature(user, challenge, sig); err != nil {
		return nil, err
	}
	return g.issueTGT(user)
}

func (g *GrantingService) issueTGT(user string) ([]byte, error) {
	claims := Claims{
		User:    user,
		Groups:  g.users.Groups(user),
		Service: "krbtgt",
		Expiry:  g.clock().Add(g.tgtTTL),
	}
	return seal(g.masterKey, claims), nil
}

// GrantTicket exchanges a valid TGT for a session ticket for service. This
// is the cheap, repeatable operation of E5: one HMAC to validate, one to
// seal.
func (g *GrantingService) GrantTicket(tgt []byte, service string) ([]byte, error) {
	g.reg.Counter(metrics.TicketOps).Inc()
	claims, err := open(g.masterKey, tgt)
	if err != nil {
		return nil, err
	}
	if claims.Service != "krbtgt" || g.clock().After(claims.Expiry.Add(g.skew)) {
		return nil, ErrInvalidTicket
	}
	g.mu.RLock()
	key, ok := g.serviceKeys[service]
	g.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	ticketClaims := Claims{
		User:    claims.User,
		Groups:  claims.Groups,
		Service: service,
		Expiry:  g.clock().Add(g.ticketTTL),
	}
	return seal(key, ticketClaims), nil
}

// Validator checks session tickets on the service side.
type Validator struct {
	service string
	key     []byte
	clock   func() time.Time
	reg     *metrics.Registry
	skew    time.Duration
}

// NewValidator creates a validator for one service with its shared key.
func NewValidator(service string, key []byte, reg *metrics.Registry) *Validator {
	return &Validator{service: service, key: key, clock: time.Now, reg: reg}
}

// WithValidatorClock returns a copy of v using the given time source.
func (v *Validator) WithValidatorClock(clock func() time.Time) *Validator {
	clone := *v
	clone.clock = clock
	return &clone
}

// WithValidatorSkew returns a copy of v accepting tickets whose expiry
// lies up to d in the past, absorbing clock drift between the TGS host
// and the validating service.
func (v *Validator) WithValidatorSkew(d time.Duration) *Validator {
	clone := *v
	clone.skew = d
	return &clone
}

// Validate opens a session ticket and returns its claims. One HMAC, no
// user store involved — the property the paper wants from Kerberos.
func (v *Validator) Validate(ticket []byte) (Claims, error) {
	v.reg.Counter(metrics.TicketOps).Inc()
	claims, err := open(v.key, ticket)
	if err != nil {
		return Claims{}, err
	}
	if claims.Service != v.service {
		return Claims{}, ErrWrongService
	}
	if v.clock().After(claims.Expiry.Add(v.skew)) {
		return Claims{}, ErrInvalidTicket
	}
	return claims, nil
}

// --- sealing ---------------------------------------------------------------

// seal encodes claims and appends an HMAC-SHA256 tag.
func seal(key []byte, claims Claims) []byte {
	body := wire.AppendString(nil, claims.User)
	body = wire.AppendStringSlice(body, claims.Groups)
	body = wire.AppendString(body, claims.Service)
	body = wire.AppendInt64(body, claims.Expiry.Unix())
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return mac.Sum(body)
}

// open verifies the tag and decodes claims.
func open(key, sealed []byte) (Claims, error) {
	if len(sealed) < sha256.Size {
		return Claims{}, ErrInvalidTicket
	}
	body, sum := sealed[:len(sealed)-sha256.Size], sealed[len(sealed)-sha256.Size:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return Claims{}, ErrInvalidTicket
	}
	buf := wire.NewBuffer(body)
	claims := Claims{
		User:    buf.String(),
		Groups:  buf.StringSlice(),
		Service: buf.String(),
	}
	claims.Expiry = time.Unix(buf.Int64(), 0)
	if buf.Err() != nil {
		return Claims{}, ErrInvalidTicket
	}
	return claims, nil
}
