// Package site assembles the pieces of one grid site — a site-local
// network, node agents, and the border proxy — and provides a multi-site
// Testbed that stands in for the paper's physical deployment: several
// LANs/clusters joined through proxy servers over an (optionally shaped)
// WAN with TLS between the borders.
//
// The Testbed is the substrate for integration tests, the examples, and
// the experiment harness. Every byte still flows through real listeners,
// dials, TLS records and tunnel frames; only the wires are in-memory.
package site

import (
	"context"
	"fmt"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/balance"
	"gridproxy/internal/ca"
	"gridproxy/internal/core"
	"gridproxy/internal/logging"
	"gridproxy/internal/metrics"
	"gridproxy/internal/node"
	"gridproxy/internal/peerlink"
	"gridproxy/internal/stage"
	"gridproxy/internal/ticket"
	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
)

// Site is one assembled grid site.
type Site struct {
	Name  string
	Proxy *core.Proxy
	Nodes []*node.Agent
	// Local is the site's internal network (plaintext).
	Local *transport.MemNetwork
}

// LocalAddr returns the proxy's client service address inside the site.
func (s *Site) LocalAddr() string { return s.Proxy.LocalAddr() }

// RegisterProgram installs a program on every node of the site.
func (s *Site) RegisterProgram(name string, fn node.ProgramFunc) {
	for _, agent := range s.Nodes {
		agent.RegisterProgram(name, fn)
	}
}

// Close stops the proxy and all node agents.
func (s *Site) Close() {
	_ = s.Proxy.Close()
	for _, agent := range s.Nodes {
		agent.Stop()
	}
	_ = s.Local.Close()
}

// SiteSpec describes one site of a testbed.
type SiteSpec struct {
	Name string
	// Nodes lists the hardware profile of each node; len(Nodes) nodes
	// are created, named <site>-n<i>.
	Nodes []node.HWProfile
	// Tunnel, if non-nil, overrides the testbed-wide tunnel config for
	// this site — how mixed-version grids (one site bonding, another
	// not) are simulated.
	Tunnel *tunnel.Config
}

// UniformNodes builds n identical node profiles with the given speed.
func UniformNodes(n int, speed float64) []node.HWProfile {
	profiles := make([]node.HWProfile, n)
	for i := range profiles {
		profiles[i] = node.HWProfile{
			Speed:        speed,
			RAMMB:        2048,
			DiskMB:       64 << 10,
			RAMPerProcMB: 64,
		}
	}
	return profiles
}

// TestbedConfig describes a whole simulated grid.
type TestbedConfig struct {
	// GridName names the CA.
	GridName string
	// Sites lists the member sites.
	Sites []SiteSpec
	// WANLatency and WANBandwidth shape the inter-site links; zero
	// means unshaped.
	WANLatency   time.Duration
	WANBandwidth int64
	// LANLatency shapes each site's internal network with a one-way
	// per-message delay; zero means unshaped. Load experiments set this
	// so in-site RPCs have a realistic service time instead of the
	// infinite speed of an unshaped in-memory pipe.
	LANLatency time.Duration
	// Policy is the placement policy name (default "least-loaded").
	Policy string
	// Lifecycle carries the peer-link supervision knobs handed to every
	// proxy (zero value: peerlink defaults).
	Lifecycle peerlink.Config
	// Gossip carries the membership-gossip knobs handed to every proxy
	// (zero value: core.GossipConfig defaults).
	Gossip core.GossipConfig
	// PeerCache carries the connection-cache knobs handed to every proxy
	// (zero value: peerlink.CacheConfig defaults).
	PeerCache peerlink.CacheConfig
	// Jobs carries the job-lifecycle fault-tolerance knobs handed to
	// every proxy (zero value: core.JobConfig defaults).
	Jobs core.JobConfig
	// Stage carries the data-plane knobs (blob store size, chunking,
	// striping) handed to every proxy (zero value: stage defaults).
	Stage stage.Config
	// Tunnel carries the WAN tunnel knobs (bonding width, adaptive
	// window clamps) handed to every proxy unless a SiteSpec overrides
	// them (zero value: adaptive flow control, single connection).
	Tunnel tunnel.Config
	// Metrics may be nil.
	Metrics *metrics.Registry
	// Logger may be nil.
	Logger *logging.Logger
	// Users, if nil, a store is created with a default admin user
	// "admin"/"admin" holding "*"/"*".
	Users *auth.Store
	// Clock overrides the time source for the TGS and every proxy, so
	// expiry tests can move the whole grid's clock at once. Nil means
	// time.Now.
	Clock func() time.Time
}

// Testbed is an assembled multi-site grid.
type Testbed struct {
	CA    *ca.Authority
	Users *auth.Store
	TGS   *ticket.GrantingService
	Sites []*Site
	// WAN is the shared inter-site backbone (pre-TLS).
	WAN *transport.MemNetwork

	metrics    *metrics.Registry
	clock      func() time.Time
	lanLatency time.Duration
	specs      map[string]SiteSpec
	policyName string
	lifecycle  peerlink.Config
	gossip     core.GossipConfig
	peerCache  peerlink.CacheConfig
	jobs       core.JobConfig
	stage      stage.Config
	tunnel     tunnel.Config
	logger     *logging.Logger
}

// NewTestbed builds and starts a grid: a CA, per-site TLS credentials, a
// shared (optionally shaped) WAN, one proxy per site, and node agents.
// Proxies are started but not connected; call ConnectAll or connect pairs
// manually.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.GridName == "" {
		cfg.GridName = "testgrid"
	}
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("site: testbed needs at least one site")
	}
	authority, err := ca.New(cfg.GridName)
	if err != nil {
		return nil, err
	}
	users := cfg.Users
	if users == nil {
		users, err = auth.NewStore(auth.WithMetrics(cfg.Metrics))
		if err != nil {
			return nil, err
		}
		if err := users.AddUser("admin", "admin"); err != nil {
			return nil, err
		}
		if err := users.GrantUser("admin", auth.Permission{Action: "*", Resource: "*"}); err != nil {
			return nil, err
		}
	}
	tgsOpts := []ticket.Option{ticket.WithMetrics(cfg.Metrics)}
	if cfg.Clock != nil {
		tgsOpts = append(tgsOpts, ticket.WithClock(cfg.Clock))
	}
	tgs, err := ticket.NewGrantingService(users, tgsOpts...)
	if err != nil {
		return nil, err
	}

	var wanOpts []transport.MemOption
	if cfg.WANLatency > 0 {
		wanOpts = append(wanOpts, transport.WithLatency(cfg.WANLatency))
	}
	if cfg.WANBandwidth > 0 {
		wanOpts = append(wanOpts, transport.WithBandwidth(cfg.WANBandwidth))
	}
	wan := transport.NewMemNetwork(wanOpts...)

	policyName := cfg.Policy
	if policyName == "" {
		policyName = "least-loaded"
	}

	tb := &Testbed{
		CA:         authority,
		Users:      users,
		TGS:        tgs,
		WAN:        wan,
		metrics:    cfg.Metrics,
		clock:      cfg.Clock,
		lanLatency: cfg.LANLatency,
		specs:      make(map[string]SiteSpec, len(cfg.Sites)),
		policyName: policyName,
		lifecycle:  cfg.Lifecycle,
		gossip:     cfg.Gossip,
		peerCache:  cfg.PeerCache,
		jobs:       cfg.Jobs,
		stage:      cfg.Stage,
		tunnel:     cfg.Tunnel,
		logger:     cfg.Logger,
	}
	for _, spec := range cfg.Sites {
		s, err := tb.buildSite(spec, policyName, cfg.Logger)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Sites = append(tb.Sites, s)
		tb.specs[spec.Name] = spec
	}
	return tb, nil
}

func (tb *Testbed) buildSite(spec SiteSpec, policyName string, log *logging.Logger) (*Site, error) {
	cred, err := tb.CA.IssueHost("proxy." + spec.Name)
	if err != nil {
		return nil, err
	}
	policy, err := balance.New(policyName, 1)
	if err != nil {
		return nil, err
	}
	var lanOpts []transport.MemOption
	if tb.lanLatency > 0 {
		lanOpts = append(lanOpts, transport.WithLatency(tb.lanLatency))
	}
	local := transport.NewMemNetwork(lanOpts...)
	wanTLS := transport.NewTLS(tb.WAN, cred, tb.CA.CertPool(), tb.metrics)

	ticketKey, err := tb.TGS.RegisterService(core.ServiceName(spec.Name))
	if err != nil {
		return nil, err
	}
	tunnelcfg := tb.tunnel
	if spec.Tunnel != nil {
		tunnelcfg = *spec.Tunnel
	}
	proxy, err := core.New(core.Config{
		Site:      spec.Name,
		WANAddr:   "wan." + spec.Name,
		LocalAddr: "proxy." + spec.Name,
		WAN:       wanTLS,
		Local:     local,
		Users:     tb.Users,
		TGS:       tb.TGS,
		TicketKey: ticketKey,
		Policy:    policy,
		Lifecycle: tb.lifecycle,
		Gossip:    tb.gossip,
		PeerCache: tb.peerCache,
		Jobs:      tb.jobs,
		Stage:     tb.stage,
		Tunnel:    tunnelcfg,
		Metrics:   tb.metrics,
		Logger:    log,
		Clock:     tb.clock,
	})
	if err != nil {
		return nil, err
	}
	s := &Site{Name: spec.Name, Proxy: proxy, Local: local}
	for i, hw := range spec.Nodes {
		agent := node.New(fmt.Sprintf("%s-n%d", spec.Name, i), spec.Name, local,
			node.WithHW(hw), node.WithLogger(log))
		s.Nodes = append(s.Nodes, agent)
		proxy.AttachNode(agent)
	}
	if err := proxy.Start(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Site returns the site with the given name, or nil.
func (tb *Testbed) Site(name string) *Site {
	for _, s := range tb.Sites {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// RestartSite tears one site down and rebuilds it from its original
// spec — the testbed's "kill -9 the proxy host and boot a fresh one".
// The new site listens on the same WAN and client addresses; peers that
// supervise a link to it will redial and recover without operator
// action. The returned Site replaces the old one in tb.Sites.
func (tb *Testbed) RestartSite(name string) (*Site, error) {
	spec, ok := tb.specs[name]
	if !ok {
		return nil, fmt.Errorf("site: no spec for site %q", name)
	}
	old := tb.Site(name)
	if old != nil {
		old.Close()
	}
	s, err := tb.buildSite(spec, tb.policyName, tb.logger)
	if err != nil {
		return nil, err
	}
	for i, existing := range tb.Sites {
		if existing.Name == name {
			tb.Sites[i] = s
			return s, nil
		}
	}
	tb.Sites = append(tb.Sites, s)
	return s, nil
}

// ConnectAll joins every pair of sites (each pair connected once, lower
// name dials higher name).
func (tb *Testbed) ConnectAll(ctx context.Context) error {
	for i, a := range tb.Sites {
		for _, b := range tb.Sites[i+1:] {
			if err := a.Proxy.Connect(ctx, b.Name, b.Proxy.WANAddr()); err != nil {
				return fmt.Errorf("site: connect %s->%s: %w", a.Name, b.Name, err)
			}
		}
	}
	return nil
}

// RegisterProgram installs a program on every node of every site.
func (tb *Testbed) RegisterProgram(name string, fn node.ProgramFunc) {
	for _, s := range tb.Sites {
		s.RegisterProgram(name, fn)
	}
}

// Close tears the whole grid down.
func (tb *Testbed) Close() {
	for _, s := range tb.Sites {
		s.Close()
	}
	_ = tb.WAN.Close()
}
