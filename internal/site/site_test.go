package site_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/balance"
	"gridproxy/internal/ca"
	"gridproxy/internal/core"
	"gridproxy/internal/grid"
	"gridproxy/internal/mpirun"
	"gridproxy/internal/node"
	"gridproxy/internal/programs"
	"gridproxy/internal/site"
	"gridproxy/internal/transport"
)

func TestTestbedBuildAndClose(t *testing.T) {
	tb, err := site.NewTestbed(site.TestbedConfig{
		Sites: []site.SiteSpec{
			{Name: "a", Nodes: site.UniformNodes(2, 1)},
			{Name: "b", Nodes: site.UniformNodes(2, 2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Sites) != 2 || tb.Site("a") == nil || tb.Site("b") == nil {
		t.Fatal("sites not assembled")
	}
	if tb.Site("missing") != nil {
		t.Error("phantom site")
	}
	if got := tb.Site("b").Nodes[0].Speed(); got != 2 {
		t.Errorf("node speed = %v", got)
	}
	// Default admin user works.
	if err := tb.Users.VerifyPassword("admin", "admin"); err != nil {
		t.Errorf("default admin: %v", err)
	}
}

func TestTestbedRejectsEmpty(t *testing.T) {
	if _, err := site.NewTestbed(site.TestbedConfig{}); err == nil {
		t.Error("empty testbed accepted")
	}
}

func TestUniformNodes(t *testing.T) {
	profiles := site.UniformNodes(3, 2.5)
	if len(profiles) != 3 {
		t.Fatalf("len = %d", len(profiles))
	}
	for _, p := range profiles {
		if p.Speed != 2.5 || p.RAMMB == 0 {
			t.Errorf("profile = %+v", p)
		}
	}
}

func TestRegisterProgramReachesEveryNode(t *testing.T) {
	tb, err := site.NewTestbed(site.TestbedConfig{
		Sites: []site.SiteSpec{
			{Name: "a", Nodes: site.UniformNodes(2, 1)},
			{Name: "b", Nodes: site.UniformNodes(3, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.RegisterProgram("noop", func(ctx context.Context, env node.Env) error { return nil })
	for _, s := range tb.Sites {
		for _, agent := range s.Nodes {
			found := false
			for _, name := range agent.Programs() {
				if name == "noop" {
					found = true
				}
			}
			if !found {
				t.Errorf("node %s missing program", agent.Name())
			}
		}
	}
}

// TestRealTCPGrid runs the full architecture over genuine TCP loopback
// sockets with real TLS between the proxies — the deployment path the
// daemons use, not the in-memory testbed.
func TestRealTCPGrid(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	authority, err := ca.New("tcptest")
	if err != nil {
		t.Fatal(err)
	}
	users, err := auth.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := users.AddUser("admin", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := users.GrantUser("admin", auth.Permission{Action: "*", Resource: "*"}); err != nil {
		t.Fatal(err)
	}

	mk := func(name, wanAddr, localAddr string, nodeCount int) (*core.Proxy, []*node.Agent) {
		cred, err := authority.IssueHost("proxy."+name, "127.0.0.1")
		if err != nil {
			t.Fatal(err)
		}
		wan := transport.NewTLS(transport.TCP{}, cred, authority.CertPool(), nil)
		// LabelTCP binds labeled endpoints (rank listeners, virtual
		// slaves) to real ephemeral ports while the configured
		// host:port services stay on their fixed addresses.
		local := transport.NewLabelTCP()
		proxy, err := core.New(core.Config{
			Site:      name,
			WANAddr:   wanAddr,
			LocalAddr: localAddr,
			WAN:       wan,
			Local:     local,
			Users:     users,
			Policy:    balance.LeastLoaded{},
		})
		if err != nil {
			t.Fatal(err)
		}
		var agents []*node.Agent
		for i := 0; i < nodeCount; i++ {
			agent := node.New(fmt.Sprintf("%s-n%d", name, i), name, local)
			programs.RegisterAll(agent)
			agents = append(agents, agent)
			proxy.AttachNode(agent)
		}
		if err := proxy.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return proxy, agents
	}

	// Fixed ports in the dynamic range; the test fails loudly if they
	// are occupied.
	proxyA, agentsA := mk("sitea", "127.0.0.1:39701", "127.0.0.1:39702", 2)
	proxyB, agentsB := mk("siteb", "127.0.0.1:39711", "127.0.0.1:39712", 2)
	t.Cleanup(func() {
		_ = proxyA.Close()
		_ = proxyB.Close()
		for _, a := range append(agentsA, agentsB...) {
			a.Stop()
		}
	})

	if err := proxyA.Connect(ctx, "siteb", "127.0.0.1:39711"); err != nil {
		t.Fatalf("connect: %v", err)
	}

	// Cross-site MPI over real sockets: every rank listener, virtual
	// slave, and tunnel byte uses genuine TCP + TLS.
	if err := mpirun.Run(ctx, proxyA, core.LaunchSpec{
		Owner:   "admin",
		Program: "pi",
		Args:    []string{"100000"},
		Procs:   4,
	}); err != nil {
		t.Fatalf("MPI over TCP: %v", err)
	}

	// The grid client API over real sockets.
	client, err := grid.Dial(ctx, transport.TCP{}, "127.0.0.1:39702")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Login(ctx, "admin", "admin"); err != nil {
		t.Fatal(err)
	}
	summaries, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("summaries over TCP = %+v", summaries)
	}
	resources, err := client.Resources(ctx, "node", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 4 { // both sites' node inventories
		t.Fatalf("resources over TCP = %+v", resources)
	}
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}
