module gridproxy

go 1.22
