// securetunnel: tunnel an arbitrary legacy TCP application between sites
// through the grid proxies — "tunneling of traffic between sites,
// regardless of the application used". A key-value store runs in siteb
// knowing nothing about the grid; a client in sitea reaches it through an
// explicitly-requested secure channel.
//
//	go run ./examples/securetunnel
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/grid"
	"gridproxy/internal/site"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName: "securetunnel",
		Sites: []site.SiteSpec{
			{Name: "sitea", Nodes: site.UniformNodes(1, 1)},
			{Name: "siteb", Nodes: site.UniformNodes(1, 1)},
		},
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ConnectAll(ctx); err != nil {
		return err
	}

	// A legacy line-protocol KV store inside siteb. It predates the
	// grid and has no TLS, no certificates, no grid library.
	siteB := tb.Site("siteb")
	ln, err := siteB.Local.Listen("legacy-kv")
	if err != nil {
		return err
	}
	defer ln.Close()
	go serveKV(ln)

	// The destination proxy authorizes the tunnel application — the
	// paper's "explicit call" for a safe channel.
	if err := siteB.Proxy.RegisterTunnelApp("admin", "kv-tunnel"); err != nil {
		return err
	}

	// A client in sitea logs into its own proxy and opens the tunnel.
	siteA := tb.Site("sitea")
	client, err := grid.Dial(ctx, siteA.Local, siteA.LocalAddr())
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Login(ctx, "admin", "admin"); err != nil {
		return err
	}
	conn, err := client.Tunnel(ctx, core.SpliceAddr(siteA.LocalAddr()),
		"kv-tunnel", "siteb", "legacy-kv")
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Println("tunnel up: sitea client -> proxy.sitea ==TLS==> proxy.siteb -> legacy-kv")

	// Talk the legacy protocol through the tunnel.
	r := bufio.NewReader(conn)
	exchange := func(cmd string) error {
		if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
			return err
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		fmt.Printf("  > %-20s < %s", cmd, reply)
		return nil
	}
	for _, cmd := range []string{
		"SET grid proxy-based",
		"SET year 2003",
		"GET grid",
		"GET year",
		"GET missing",
	} {
		if err := exchange(cmd); err != nil {
			return err
		}
	}
	return nil
}

// serveKV implements the legacy store: SET k v / GET k, one command per
// line.
func serveKV(ln net.Listener) {
	store := map[string]string{}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			scanner := bufio.NewScanner(conn)
			for scanner.Scan() {
				fields := strings.Fields(scanner.Text())
				switch {
				case len(fields) == 3 && fields[0] == "SET":
					store[fields[1]] = fields[2]
					fmt.Fprintln(conn, "OK")
				case len(fields) == 2 && fields[0] == "GET":
					if v, ok := store[fields[1]]; ok {
						fmt.Fprintln(conn, v)
					} else {
						fmt.Fprintln(conn, "(nil)")
					}
				default:
					fmt.Fprintln(conn, "ERR")
				}
			}
		}(conn)
	}
}
