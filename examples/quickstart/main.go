// Quickstart: assemble a two-site grid in process, authenticate, inspect
// compiled status, and run an MPI job that spans both sites through the
// proxies' TLS tunnel.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gridproxy/internal/grid"
	"gridproxy/internal/metrics"
	"gridproxy/internal/programs"
	"gridproxy/internal/site"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// 1. Build a grid: two sites, four nodes each, joined by one proxy
	//    per site over mutually-authenticated TLS. The testbed stands in
	//    for two real LANs — every byte still crosses real listeners,
	//    TLS records, and tunnel frames.
	reg := metrics.NewRegistry()
	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName: "quickstart",
		Sites: []site.SiteSpec{
			{Name: "ufscar", Nodes: site.UniformNodes(4, 1.0)},
			{Name: "partner", Nodes: site.UniformNodes(4, 2.0)},
		},
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ConnectAll(ctx); err != nil {
		return err
	}
	fmt.Println("grid up: sites", tb.Sites[0].Name, "and", tb.Sites[1].Name)

	// 2. Install the demo programs on every node (the "installed
	//    software base" of the paper).
	for _, s := range tb.Sites {
		for _, agent := range s.Nodes {
			programs.RegisterAll(agent)
		}
	}

	// 3. A user inside the first site connects to their proxy and
	//    authenticates. The default testbed user is admin/admin.
	client, err := grid.Dial(ctx, tb.Sites[0].Local, tb.Sites[0].LocalAddr())
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Login(ctx, "admin", "admin"); err != nil {
		return err
	}
	fmt.Println("authenticated as", client.User())

	// 4. Compiled grid status: one control round trip per site, not per
	//    node.
	summaries, err := client.Status(ctx)
	if err != nil {
		return err
	}
	for _, s := range summaries {
		fmt.Printf("site %-8s nodes=%d up=%d ram_free=%dMB\n",
			s.Site, s.Nodes, s.NodesUp, s.RAMFreeMB)
	}

	// 5. Run an 8-process MPI job. The scheduler spreads ranks over both
	//    sites; inter-site rank traffic is multiplexed through the
	//    proxies transparently.
	jobID, err := client.SubmitMPI(ctx, "pi", []string{"200000"}, 8)
	if err != nil {
		return err
	}
	fmt.Println("submitted MPI job", jobID)
	if err := client.WaitJob(ctx, jobID); err != nil {
		return err
	}
	fmt.Println("job completed: π estimated and verified by rank 0")

	// 6. The proof that the architecture did its job: MPI bytes crossed
	//    the encrypted inter-site tunnel, while intra-site traffic
	//    stayed in the clear.
	fmt.Printf("bytes through encrypted tunnel: %d\n",
		reg.Counter(metrics.BytesTunneled).Value())
	fmt.Printf("TLS handshakes performed (site borders only): %d\n",
		reg.Counter(metrics.TLSHandshakes).Value())
	return nil
}
