// loadbalance: compare MPI's default round-robin placement against the
// proxy scheduler's load-aware policies on a heterogeneous grid, both in
// the discrete-event simulator (exact makespans) and on the live testbed
// (real process placement).
//
//	go run ./examples/loadbalance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gridproxy/internal/balance"
	"gridproxy/internal/core"
	"gridproxy/internal/node"
	"gridproxy/internal/programs"
	"gridproxy/internal/sim"
	"gridproxy/internal/site"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1 — simulator: 2 sites × 8 nodes with speeds spread 1–8×,
	// 256 tasks of skewed size.
	fmt.Println("— simulated makespans (2 sites × 8 nodes, speed skew 8×, 256 tasks) —")
	nodes := sim.HeterogeneousNodes(2, 8, 8, 42)
	tasks := sim.SkewedTasks(256, 43, 1, 4)
	for _, policyName := range []string{"round-robin", "random", "weighted-speed", "least-loaded"} {
		policy, err := balance.New(policyName, 1)
		if err != nil {
			return err
		}
		result, err := sim.Simulate(nodes, tasks, policy)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s makespan=%7.2f  utilization=%.2f\n",
			policyName, result.Makespan, result.Utilization())
	}

	// Part 2 — live grid: place a 12-process job with two different
	// policies on a grid whose second site is 4× faster, and look at
	// where the ranks land.
	fmt.Println("\n— live placement (slow site ×4 nodes @1.0, fast site ×4 nodes @4.0) —")
	for _, policyName := range []string{"round-robin", "least-loaded"} {
		if err := livePlacement(policyName); err != nil {
			return err
		}
	}
	return nil
}

func livePlacement(policyName string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName: "loadbalance",
		Sites: []site.SiteSpec{
			{Name: "slow", Nodes: uniformWithSpeed(4, 1.0)},
			{Name: "fast", Nodes: uniformWithSpeed(4, 4.0)},
		},
		Policy: policyName,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ConnectAll(ctx); err != nil {
		return err
	}
	for _, s := range tb.Sites {
		for _, agent := range s.Nodes {
			programs.RegisterAll(agent)
		}
	}
	launch, err := tb.Sites[0].Proxy.LaunchMPI(ctx, core.LaunchSpec{
		Owner:   "admin",
		Program: "sleep",
		Args:    []string{"20ms"},
		Procs:   12,
	})
	if err != nil {
		return err
	}
	perSite := map[string]int{}
	for _, loc := range launch.Locations {
		perSite[loc.Site]++
	}
	start := time.Now()
	if err := launch.Wait(ctx); err != nil {
		return err
	}
	fmt.Printf("  %-15s ranks: slow=%d fast=%d   wall=%v\n",
		policyName, perSite["slow"], perSite["fast"], time.Since(start).Round(time.Millisecond))
	return nil
}

func uniformWithSpeed(n int, speed float64) []node.HWProfile {
	return site.UniformNodes(n, speed)
}
