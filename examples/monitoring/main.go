// monitoring: watch the distributed status collection at work. Each proxy
// compiles its own site; the origin proxy assembles the grid view with one
// control exchange per site. A burst of work visibly moves the load
// numbers, and the web interface serves the same data over HTTP.
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/metrics"
	"gridproxy/internal/programs"
	"gridproxy/internal/site"
	"gridproxy/internal/webui"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName: "monitoring",
		Sites: []site.SiteSpec{
			{Name: "north", Nodes: site.UniformNodes(3, 1)},
			{Name: "south", Nodes: site.UniformNodes(5, 1)},
			{Name: "west", Nodes: site.UniformNodes(2, 1)},
		},
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ConnectAll(ctx); err != nil {
		return err
	}
	for _, s := range tb.Sites {
		for _, agent := range s.Nodes {
			programs.RegisterAll(agent)
		}
	}
	origin := tb.Sites[0].Proxy

	printStatus := func(label string) error {
		before := reg.Counter(metrics.ControlMessages).Value()
		summaries, err := origin.Status(ctx, nil)
		if err != nil {
			return err
		}
		msgs := reg.Counter(metrics.ControlMessages).Value() - before
		fmt.Printf("%s (control messages for the full refresh: %d)\n", label, msgs)
		for _, s := range summaries {
			fmt.Printf("  %-6s nodes=%d up=%d load=%.2f procs=%d\n",
				s.Site, s.Nodes, s.NodesUp, s.Load1, s.RunningProcs)
		}
		return nil
	}

	if err := printStatus("idle grid:"); err != nil {
		return err
	}

	// Put the grid under load and look again.
	launch, err := origin.LaunchMPI(ctx, core.LaunchSpec{
		Owner:   "admin",
		Program: "sleep",
		Args:    []string{"400ms"},
		Procs:   8,
	})
	if err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond) // let the ranks start
	if err := printStatus("under an 8-process job:"); err != nil {
		return err
	}
	if err := launch.Wait(ctx); err != nil {
		return err
	}
	if err := printStatus("after completion:"); err != nil {
		return err
	}

	// The same compiled view over the web interface.
	server := httptest.NewServer(webui.New(origin))
	defer server.Close()
	resp, err := http.Get(server.URL + "/api/grid")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("\nGET /api/grid → %s\n%s", resp.Status, body)
	return nil
}
