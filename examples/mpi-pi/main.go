// mpi-pi: a three-site virtual cluster computes π with an unmodified MPI
// program. The program body below contains no grid code whatsoever — it
// sees ranks and collectives; the proxies supply the illusion of one
// cluster (paper Figure 3b).
//
//	go run ./examples/mpi-pi
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/mpi"
	"gridproxy/internal/mpirun"
	"gridproxy/internal/node"
	"gridproxy/internal/site"
)

const steps = 2_000_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	tb, err := site.NewTestbed(site.TestbedConfig{
		GridName: "mpi-pi",
		Sites: []site.SiteSpec{
			{Name: "alpha", Nodes: site.UniformNodes(2, 1)},
			{Name: "beta", Nodes: site.UniformNodes(2, 1)},
			{Name: "gamma", Nodes: site.UniformNodes(2, 1)},
		},
		// Simulate a real WAN between the sites.
		WANLatency: 200 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ConnectAll(ctx); err != nil {
		return err
	}

	// This is the whole application: plain MPI, nothing else. It could
	// run unchanged on a laptop, one cluster, or this 3-site grid.
	results := make(chan float64, 1)
	tb.RegisterProgram("pi", mpirun.Program(
		func(ctx context.Context, w *mpi.World, env node.Env) error {
			h := 1.0 / float64(steps)
			var local float64
			for i := w.Rank(); i < steps; i += w.Size() {
				x := h * (float64(i) + 0.5)
				local += 4.0 / (1.0 + x*x)
			}
			sum, err := w.Allreduce(ctx, mpi.OpSum, []float64{local * h})
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				results <- sum[0]
			}
			return nil
		}))

	for _, procs := range []int{2, 6} {
		launch, err := tb.Sites[0].Proxy.LaunchMPI(ctx, core.LaunchSpec{
			Owner:   "admin",
			Program: "pi",
			Procs:   procs,
		})
		if err != nil {
			return err
		}
		// Show where the scheduler put the ranks.
		perSite := map[string]int{}
		for _, loc := range launch.Locations {
			perSite[loc.Site]++
		}
		fmt.Printf("procs=%d placement:", procs)
		for _, s := range tb.Sites {
			fmt.Printf(" %s=%d", s.Name, perSite[s.Name])
		}
		fmt.Println()
		if err := launch.Wait(ctx); err != nil {
			return err
		}
		estimate := <-results
		fmt.Printf("  π ≈ %.10f (error %.2e)\n", estimate, math.Abs(estimate-math.Pi))
	}
	return nil
}
