// Package gridproxy_test holds the repository-level benchmark harness:
// one testing.B benchmark per experiment table (E1–E8, see DESIGN.md §5
// and EXPERIMENTS.md) plus micro-benchmarks of the hot substrates the
// experiments rest on. Regenerate everything with:
//
//	go test -bench=. -benchmem .
package gridproxy_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"gridproxy/internal/auth"
	"gridproxy/internal/balance"
	"gridproxy/internal/ca"
	"gridproxy/internal/experiments"
	"gridproxy/internal/metrics"
	"gridproxy/internal/mpi"
	"gridproxy/internal/proto"
	"gridproxy/internal/scheduler"
	"gridproxy/internal/sim"
	"gridproxy/internal/ticket"
	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
	"gridproxy/internal/wire"
)

// --- per-experiment benchmarks (one table per op) --------------------------

func BenchmarkE1_MPIPingPong(b *testing.B) {
	cfg := experiments.E1Config{MsgSizes: []int{4096}, Rounds: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_EdgeVsPerNodeCrypto(b *testing.B) {
	cfg := experiments.E2Config{
		Sites: 2, NodesPerSite: 2, Flows: 12, BytesPerFlow: 8 << 10,
		IntraFracs: []float64{0.5}, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_SchedulingPolicies(b *testing.B) {
	cfg := experiments.E3Config{
		Sites: 2, NodesPerSite: 8, Tasks: 256, TaskSkew: 4,
		NodeSkews: []float64{4},
		Policies:  []string{"round-robin", "least-loaded"},
		Seed:      1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_StatusCollection(b *testing.B) {
	cfg := experiments.E4Config{Shapes: [][2]int{{3, 4}}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_AuthSchemes(b *testing.B) {
	cfg := experiments.E5Config{RequestCounts: []int{50}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_DeploymentFootprint(b *testing.B) {
	cfg := experiments.DefaultE6()
	for i := 0; i < b.N; i++ {
		_ = experiments.E6(cfg)
	}
}

func BenchmarkE7_FailureContainment(b *testing.B) {
	cfg := experiments.E7Config{Shapes: [][2]int{{3, 2}}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_TunnelMultiplexing(b *testing.B) {
	cfg := experiments.E8Config{StreamCounts: []int{16}, BytesEach: 16 << 10}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

// BenchmarkTunnelThroughput and BenchmarkWireRoundTrip are the data-path
// headline numbers committed to BENCH_tunnel.json; their bodies live in
// internal/experiments so `gridbench -json` captures the same
// measurements.

func BenchmarkTunnelThroughput(b *testing.B) {
	experiments.BenchTunnelThroughput(b)
}

func BenchmarkTunnelThroughputBonded4(b *testing.B) {
	experiments.BenchTunnelThroughputBonded4(b)
}

func BenchmarkWireRoundTrip(b *testing.B) {
	experiments.BenchWireRoundTrip(b)
}

func BenchmarkWireFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAA}, 4096)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := wire.NewWriter(&buf)
		if err := w.WriteFrame(1, payload); err != nil {
			b.Fatal(err)
		}
		r := wire.NewReader(&buf)
		if _, err := r.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtoStatusReportCodec(b *testing.B) {
	report := &proto.StatusReport{}
	for i := 0; i < 16; i++ {
		report.Sites = append(report.Sites, proto.SiteStatus{
			Site: fmt.Sprintf("site%d", i), Nodes: 64, NodesUp: 63,
			CPUFreePct: 42.5, RAMFreeMB: 1 << 20, DiskFreeMB: 1 << 24,
			Load1: 1.25, RunningProcs: 100, CollectedUnix: 1_700_000_000,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := proto.Marshal(1, report)
		if _, err := proto.Unmarshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunnelStreamThroughput(b *testing.B) {
	mem := transport.NewMemNetwork()
	defer mem.Close()
	ln, err := mem.Listen("peer")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	acceptCh := make(chan *tunnel.Session, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		acceptCh <- tunnel.Server(conn, tunnel.Config{})
	}()
	conn, err := mem.Dial(ctx, "peer")
	if err != nil {
		b.Fatal(err)
	}
	client := tunnel.Client(conn, tunnel.Config{})
	defer client.Close()
	server := <-acceptCh
	defer server.Close()
	go func() {
		for {
			stream, err := server.Accept(ctx)
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, stream) }()
		}
	}()
	stream, err := client.Open(ctx, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLSConnThroughput(b *testing.B) {
	authority, err := ca.New("bench")
	if err != nil {
		b.Fatal(err)
	}
	credA, err := authority.IssueHost("a")
	if err != nil {
		b.Fatal(err)
	}
	credB, err := authority.IssueHost("b")
	if err != nil {
		b.Fatal(err)
	}
	mem := transport.NewMemNetwork()
	defer mem.Close()
	pool := authority.CertPool()
	tlsA := transport.NewTLS(mem, credA, pool, nil)
	tlsB := transport.NewTLS(mem, credB, pool, nil)
	ln, err := tlsA.Listen("peer")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, conn)
	}()
	conn, err := tlsB.Dial(context.Background(), "peer")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPISendRecv(b *testing.B) {
	ctx := context.Background()
	mem := transport.NewMemNetwork()
	defer mem.Close()
	table := map[int]string{0: "r0", 1: "r1"}
	w0, err := mpi.Join(ctx, mpi.Config{Rank: 0, WorldSize: 2, Table: table, ListenAddr: "r0", Network: mem})
	if err != nil {
		b.Fatal(err)
	}
	defer w0.Close()
	w1, err := mpi.Join(ctx, mpi.Config{Rank: 1, WorldSize: 2, Table: table, ListenAddr: "r1", Network: mem})
	if err != nil {
		b.Fatal(err)
	}
	defer w1.Close()
	payload := make([]byte, 4096)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			if _, err := w1.Recv(ctx, 0, 1); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w0.Send(ctx, 1, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMPIAllreduce8(b *testing.B) {
	ctx := context.Background()
	mem := transport.NewMemNetwork()
	defer mem.Close()
	const n = 8
	table := make(map[int]string, n)
	for i := 0; i < n; i++ {
		table[i] = fmt.Sprintf("r%d", i)
	}
	worlds := make([]*mpi.World, n)
	for i := 0; i < n; i++ {
		w, err := mpi.Join(ctx, mpi.Config{Rank: i, WorldSize: n, Table: table, ListenAddr: table[i], Network: mem})
		if err != nil {
			b.Fatal(err)
		}
		worlds[i] = w
		defer w.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := make(chan error, n)
		for _, w := range worlds {
			go func(w *mpi.World) {
				_, err := w.Allreduce(ctx, mpi.OpSum, []float64{1})
				errs <- err
			}(w)
		}
		for j := 0; j < n; j++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAuthPasswordVerify(b *testing.B) {
	store, err := auth.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.VerifyPassword("alice", "pw"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTicketValidate(b *testing.B) {
	store, err := auth.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	if err := store.AddUser("alice", "pw"); err != nil {
		b.Fatal(err)
	}
	tgs, err := ticket.NewGrantingService(store)
	if err != nil {
		b.Fatal(err)
	}
	key, err := tgs.RegisterService("svc")
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := tgs.SignOnPassword("alice", "pw")
	if err != nil {
		b.Fatal(err)
	}
	tick, err := tgs.GrantTicket(tgt, "svc")
	if err != nil {
		b.Fatal(err)
	}
	validator := ticket.NewValidator("svc", key, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := validator.Validate(tick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerPlace(b *testing.B) {
	nodes := make([]balance.NodeInfo, 64)
	for i := range nodes {
		nodes[i] = balance.NodeInfo{
			Name: fmt.Sprintf("n%d", i), Site: fmt.Sprintf("s%d", i%4),
			Speed: 1 + float64(i%8), RAMFreeMB: 2048,
		}
	}
	source := scheduler.NodeSourceFunc(func() []balance.NodeInfo {
		out := make([]balance.NodeInfo, len(nodes))
		copy(out, nodes)
		return out
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := scheduler.New(balance.LeastLoaded{}, source)
		job := scheduler.Job{ID: "j", Owner: "a", Program: "p"}
		for t := 0; t < 32; t++ {
			job.Tasks = append(job.Tasks, scheduler.Task{ID: fmt.Sprintf("t%d", t), Work: 1})
		}
		if err := s.Submit(job); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Place("j"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate512Tasks(b *testing.B) {
	nodes := sim.HeterogeneousNodes(4, 8, 8, 1)
	tasks := sim.SkewedTasks(512, 2, 1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(nodes, tasks, balance.LeastLoaded{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsCounter(b *testing.B) {
	reg := metrics.NewRegistry()
	c := reg.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkE1CrossSiteLatency isolates the latency the proxy pair adds on
// one shaped WAN link (the headline Figure 3 comparison at bench speed).
func BenchmarkE1CrossSiteLatency(b *testing.B) {
	row, err := experiments.E1(experiments.E1Config{
		MsgSizes:   []int{1024},
		Rounds:     b.N + 1,
		WANLatency: 50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = row
}

// --- ablation benchmarks (design choices called out in DESIGN.md §7) --------

// BenchmarkTunnelWindowSizes ablates the per-stream flow-control window:
// too small and the sender stalls waiting for WINDOW credits; large
// windows approach raw connection throughput at the cost of buffering.
func BenchmarkTunnelWindowSizes(b *testing.B) {
	for _, window := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("window=%dKiB", window>>10), func(b *testing.B) {
			mem := transport.NewMemNetwork()
			defer mem.Close()
			ln, err := mem.Listen("peer")
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			cfg := tunnel.Config{Window: window}
			sessCh := make(chan *tunnel.Session, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				sessCh <- tunnel.Server(conn, cfg)
			}()
			conn, err := mem.Dial(ctx, "peer")
			if err != nil {
				b.Fatal(err)
			}
			client := tunnel.Client(conn, cfg)
			defer client.Close()
			server := <-sessCh
			defer server.Close()
			go func() {
				stream, err := server.Accept(ctx)
				if err != nil {
					return
				}
				buf := make([]byte, 64<<10)
				for {
					if _, err := stream.Read(buf); err != nil {
						return
					}
				}
			}()
			stream, err := client.Open(ctx, nil)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 256<<10)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stream.Write(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBalancePolicies ablates placement-policy CPU cost at scale —
// the control-plane price of load awareness.
func BenchmarkBalancePolicies(b *testing.B) {
	nodes := make([]balance.NodeInfo, 256)
	for i := range nodes {
		nodes[i] = balance.NodeInfo{Name: fmt.Sprintf("n%d", i), Speed: 1 + float64(i%8)}
	}
	for _, name := range []string{"round-robin", "least-loaded", "weighted-speed", "random"} {
		b.Run(name, func(b *testing.B) {
			policy, err := balance.New(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := policy.Pick(nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPBKDF2Ablation shows why per-request password auth cannot be
// cheap: the deliberate key-stretching cost E5's ticket scheme amortizes
// away.
func BenchmarkPBKDF2Ablation(b *testing.B) {
	store, err := auth.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	if err := store.AddUser("u", "p"); err != nil {
		b.Fatal(err)
	}
	tok, _, err := store.IssueToken("u")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("password-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := store.VerifyPassword("u", "p"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("token-validate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.ValidateToken(tok); err != nil {
				b.Fatal(err)
			}
		}
	})
}
