package gridproxy_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndBinaries builds the real binaries and drives a two-site
// grid as separate OS processes: gridca issues certificates, two
// gridproxyd daemons peer over TLS on loopback TCP, and gridctl
// authenticates, inspects status, and runs a cross-site MPI job.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	// Build the binaries once.
	for _, name := range []string{"gridca", "gridproxyd", "gridctl"} {
		cmd := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// CA + host certificates.
	run("gridca", "init", "-dir", "certs", "-grid", "e2e")
	run("gridca", "host", "-dir", "certs", "-name", "proxy.sitea", "-hosts", "127.0.0.1")
	run("gridca", "host", "-dir", "certs", "-name", "proxy.siteb", "-hosts", "127.0.0.1")

	// Users file.
	users := `user alice secret researchers
grant group researchers status *
grant group researchers mpi site:*
grant group researchers tunnel site:*
`
	if err := os.WriteFile(filepath.Join(dir, "users.conf"), []byte(users), 0o600); err != nil {
		t.Fatal(err)
	}

	// Pick four free ports.
	ports := freePorts(t, 4)
	wanA, localA := ports[0], ports[1]
	wanB, localB := ports[2], ports[3]

	writeConf := func(name, site string, wan, local int, peers string) {
		conf := fmt.Sprintf(`site = %s
wan_addr = 127.0.0.1:%d
local_addr = 127.0.0.1:%d
ca_dir = certs
cert = proxy.%s
users = users.conf
nodes = 2
%s`, site, wan, local, site, peers)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(conf), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeConf("sitea.conf", "sitea", wanA, localA, "")
	writeConf("siteb.conf", "siteb", wanB, localB, fmt.Sprintf("peers = sitea=127.0.0.1:%d\n", wanA))

	// Start daemon A, wait for its ports, then daemon B (which peers
	// with A on startup).
	startDaemon := func(conf string) *exec.Cmd {
		cmd := exec.Command(bin("gridproxyd"), "-config", conf)
		cmd.Dir = dir
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", conf, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}
	startDaemon("sitea.conf")
	waitPort(t, localA)
	startDaemon("siteb.conf")
	waitPort(t, localB)

	// Give the peering + inventory exchange a moment.
	deadline := time.Now().Add(15 * time.Second)
	var statusOut string
	for time.Now().Before(deadline) {
		out, err := exec.Command(bin("gridctl"),
			"-proxy", fmt.Sprintf("127.0.0.1:%d", localB),
			"-user", "alice", "-password", "secret", "status").CombinedOutput()
		statusOut = string(out)
		if err == nil && strings.Contains(statusOut, "sitea") && strings.Contains(statusOut, "siteb") {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !strings.Contains(statusOut, "sitea") || !strings.Contains(statusOut, "siteb") {
		t.Fatalf("status never showed both sites:\n%s", statusOut)
	}

	// Ping round trip.
	pingOut := run("gridctl", "-proxy", fmt.Sprintf("127.0.0.1:%d", localB), "ping")
	if !strings.Contains(pingOut, "pong") {
		t.Errorf("ping output: %s", pingOut)
	}

	// Cross-site MPI job via the CLI (4 procs on 2+2 nodes spans both
	// daemons).
	submitOut := run("gridctl",
		"-proxy", fmt.Sprintf("127.0.0.1:%d", localB),
		"-user", "alice", "-password", "secret",
		"submit", "-program", "pi", "-procs", "4", "-args", "100000", "-wait")
	if !strings.Contains(submitOut, "job done") {
		t.Fatalf("submit output:\n%s", submitOut)
	}

	// Resource listing sees both sites' nodes.
	resOut := run("gridctl",
		"-proxy", fmt.Sprintf("127.0.0.1:%d", localB),
		"-user", "alice", "-password", "secret",
		"resources")
	if !strings.Contains(resOut, "sitea") || !strings.Contains(resOut, "siteb-n0") {
		t.Errorf("resources output:\n%s", resOut)
	}
}

// freePorts reserves n distinct TCP ports and releases them.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var listeners []net.Listener
	var ports []int
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return ports
}

// waitPort blocks until something listens on 127.0.0.1:port.
func waitPort(t *testing.T, port int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("port %d never came up", port)
}
