// Command gridnode runs a standalone node agent that participates in its
// site's monitoring: it periodically pushes CPU/RAM/disk reports to the
// site proxy's node service over the (trusted, plaintext) site network.
//
// In the reference deployment the proxy hosts its site's compute agents
// in-process (see gridproxyd's `nodes` setting); gridnode demonstrates
// the wire protocol a remote agent speaks.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/node"
	"gridproxy/internal/proto"
	"gridproxy/internal/transport"
	"gridproxy/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridnode:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("name", "node0", "node name (unique within the site)")
	siteName := flag.String("site", "sitea", "site name")
	proxyAddr := flag.String("proxy", "127.0.0.1:7200", "site proxy client address")
	interval := flag.Duration("interval", 5*time.Second, "report interval")
	speed := flag.Float64("speed", 1.0, "relative node speed")
	ramMB := flag.Int64("ram", 2048, "node RAM in MB")
	diskMB := flag.Int64("disk", 65536, "node disk in MB")
	flag.Parse()

	agent := node.New(*name, *siteName, transport.TCP{}, node.WithHW(node.HWProfile{
		Speed: *speed, RAMMB: *ramMB, DiskMB: *diskMB, RAMPerProcMB: 64,
	}))
	defer agent.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nodesAddr := core.NodesAddr(*proxyAddr)
	conn, err := transport.TCP{}.Dial(ctx, nodesAddr)
	if err != nil {
		return fmt.Errorf("dial proxy node service %s: %w", nodesAddr, err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn)

	fmt.Printf("gridnode %s reporting to %s every %v\n", *name, nodesAddr, *interval)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		stats := agent.Stats()
		msg := proto.Marshal(0, stats.ToReport())
		if err := proto.WriteMessage(w, msg); err != nil {
			return fmt.Errorf("send report: %w", err)
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil
		}
	}
}
