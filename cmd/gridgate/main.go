// Command gridgate runs the grid's multi-tenant HTTP front door: a REST
// gateway over one site proxy with ticket-backed sessions, per-user and
// per-group rate limits, concurrent-job quotas, load-shedding admission
// control, and graceful drain on SIGTERM.
//
// It runs the ticket granting service in-process. To interoperate with
// a separately running gridproxyd, both processes must point
// ticket_secret at the same secret file: service keys derive
// deterministically from it, so the ticket the gateway grants is the
// ticket the proxy validates.
//
// Configuration ("key = value" file, see -config):
//
//	site          = sitea            # fronted proxy's site name
//	proxy_addr    = 127.0.0.1:7200   # proxy's site-local client service
//	gate_addr     = 127.0.0.1:7400   # HTTP listen address
//	users         = users.conf       # users/permissions file (same as proxy)
//	ticket_secret = gate.secret      # shared-secret file (required)
//	session_ttl   = 1h               # session lifetime (capped by ticket TTL)
//	tgt_ttl       = 10h              # sign-on lifetime
//	ticket_ttl    = 1h               # service-ticket lifetime
//	ticket_skew   = 0s               # clock-skew tolerance for expiry checks
//	webui_addr    = 127.0.0.1:7300   # proxy's web interface: served at /ui/
//	                                 # behind the session check, forwarding
//	                                 # the session's ticket to its web_auth
//	                                 # gate ("" disables)
//
// Admission and fairness knobs (all optional; see internal/gate
// defaults):
//
//	max_inflight  = 256              # concurrent-request capacity
//	max_queue     = 256              # waiters beyond capacity before shedding
//	queue_wait    = 1s               # longest a queued request waits
//	retry_after   = 1s               # Retry-After hint on 429
//	user_rate     = 50               # requests/s per user (negative disables)
//	group_rate    = 200              # requests/s per group
//	login_rate    = 1                # sign-on attempts/s per user name
//	max_jobs      = 16               # concurrent jobs per user
//	pool_clients  = 64               # pooled proxy connections cap
//	pool_idle     = 2m               # close pooled clients idle this long
//	timeout_login = 10s              # per-route deadlines
//	timeout_submit= 60s
//	timeout_query = 10s
//	timeout_data  = 30s
//	max_body      = 8388608          # request-body cap (file puts)
//	drain_timeout = 30s              # SIGTERM: in-flight completion budget
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridproxy/internal/config"
	"gridproxy/internal/core"
	"gridproxy/internal/gate"
	"gridproxy/internal/logging"
	"gridproxy/internal/metrics"
	"gridproxy/internal/ticket"
	"gridproxy/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridgate:", err)
		os.Exit(1)
	}
}

func run() error {
	configPath := flag.String("config", "gridgate.conf", "configuration file")
	logLevel := flag.String("log", "info", "log level (debug|info|warn|error)")
	flag.Parse()

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	log := logging.New("gridgate", logging.WithLevel(level))

	cfg, err := config.LoadFile(*configPath)
	if err != nil {
		return err
	}
	siteName := cfg.Get("site", "")
	if siteName == "" {
		return fmt.Errorf("config: site is required")
	}
	users, err := config.LoadUsers(cfg.Get("users", "users.conf"))
	if err != nil {
		return err
	}
	secretPath := cfg.Get("ticket_secret", "")
	if secretPath == "" {
		return fmt.Errorf("config: ticket_secret is required (shared with gridproxyd)")
	}
	secret, err := os.ReadFile(secretPath)
	if err != nil {
		return fmt.Errorf("read ticket secret: %w", err)
	}

	tgtTTL, err := cfg.Duration("tgt_ttl", ticket.DefaultTGTLifetime)
	if err != nil {
		return err
	}
	ticketTTL, err := cfg.Duration("ticket_ttl", ticket.DefaultTicketLifetime)
	if err != nil {
		return err
	}
	skew, err := cfg.Duration("ticket_skew", 0)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	tgs, err := ticket.NewGrantingService(users,
		ticket.WithMasterKey(secret),
		ticket.WithLifetimes(tgtTTL, ticketTTL),
		ticket.WithSkew(skew),
		ticket.WithMetrics(reg))
	if err != nil {
		return err
	}
	// Derive the fronted proxy's service key so GrantTicket knows the
	// service; gridproxyd derives the identical key from the same secret.
	if _, err := tgs.RegisterService(core.ServiceName(siteName)); err != nil {
		return err
	}

	gcfg, err := gateConfigFrom(cfg)
	if err != nil {
		return err
	}
	gcfg.Site = siteName
	gcfg.ProxyAddr = cfg.Get("proxy_addr", "127.0.0.1:7200")
	gcfg.Network = transport.NewLabelTCP()
	gcfg.TGS = tgs
	gcfg.Metrics = reg
	gcfg.Logger = log
	// The proxy's web interface, served at /ui/ behind the session
	// check: the gateway reverse-proxies to gridproxyd's web listener,
	// re-presenting the session's service ticket as the bearer
	// credential its web_auth gate validates.
	if webAddr := cfg.Get("webui_addr", ""); webAddr != "" {
		gcfg.WebUI = httputil.NewSingleHostReverseProxy(&url.URL{Scheme: "http", Host: webAddr})
	}

	gateway, err := gate.New(gcfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gateway.Run(ctx)

	gateAddr := cfg.Get("gate_addr", "127.0.0.1:7400")
	server := &http.Server{
		Addr:              gateAddr,
		Handler:           gateway,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	log.Info("gridgate listening", "addr", gateAddr, "site", siteName)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work (503 + Connection: close), let
	// in-flight requests finish, close the pooled grid clients, then
	// shut the HTTP server down.
	drainTimeout, err := cfg.Duration("drain_timeout", 30*time.Second)
	if err != nil {
		return err
	}
	log.Info("draining", "timeout", drainTimeout)
	//lint:allow-background the signal context is already done; the drain
	// deadline is the process's last clock.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	server.SetKeepAlivesEnabled(false)
	if err := gateway.Drain(drainCtx); err != nil {
		log.Warn("drain deadline passed with requests in flight", "err", err)
	}
	if err := server.Shutdown(drainCtx); err != nil {
		return err
	}
	log.Info("drained cleanly")
	return nil
}

// gateConfigFrom reads the admission, limit, timeout, and pool knobs.
// Absent keys stay zero so the gate defaults apply.
func gateConfigFrom(cfg *config.Config) (gate.Config, error) {
	var g gate.Config
	var err error
	if g.SessionTTL, err = cfg.Duration("session_ttl", 0); err != nil {
		return g, err
	}
	if g.Admission.MaxInFlight, err = cfg.Int("max_inflight", 0); err != nil {
		return g, err
	}
	if g.Admission.MaxQueue, err = cfg.Int("max_queue", 0); err != nil {
		return g, err
	}
	if g.Admission.QueueWait, err = cfg.Duration("queue_wait", 0); err != nil {
		return g, err
	}
	if g.Admission.RetryAfter, err = cfg.Duration("retry_after", 0); err != nil {
		return g, err
	}
	if g.Limits.UserRate, err = floatKey(cfg, "user_rate"); err != nil {
		return g, err
	}
	if g.Limits.GroupRate, err = floatKey(cfg, "group_rate"); err != nil {
		return g, err
	}
	if g.Limits.LoginRate, err = floatKey(cfg, "login_rate"); err != nil {
		return g, err
	}
	if g.Limits.MaxJobsPerUser, err = cfg.Int("max_jobs", 0); err != nil {
		return g, err
	}
	if g.Pool.MaxClients, err = cfg.Int("pool_clients", 0); err != nil {
		return g, err
	}
	if g.Pool.IdleClose, err = cfg.Duration("pool_idle", 0); err != nil {
		return g, err
	}
	if g.Timeouts.Login, err = cfg.Duration("timeout_login", 0); err != nil {
		return g, err
	}
	if g.Timeouts.Submit, err = cfg.Duration("timeout_submit", 0); err != nil {
		return g, err
	}
	if g.Timeouts.Query, err = cfg.Duration("timeout_query", 0); err != nil {
		return g, err
	}
	if g.Timeouts.Data, err = cfg.Duration("timeout_data", 0); err != nil {
		return g, err
	}
	maxBody, err := cfg.Int("max_body", 0)
	if err != nil {
		return g, err
	}
	g.MaxBodyBytes = int64(maxBody)
	return g, nil
}

// floatKey parses an optional float knob; absent keys return 0 so the
// gate defaults apply.
func floatKey(cfg *config.Config, key string) (float64, error) {
	if !cfg.Has(key) {
		return 0, nil
	}
	var v float64
	if _, err := fmt.Sscanf(cfg.Get(key, "0"), "%g", &v); err != nil {
		return 0, fmt.Errorf("config: %s: %w", key, err)
	}
	return v, nil
}
