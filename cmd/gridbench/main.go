// Command gridbench regenerates every experiment table of the
// reproduction (see DESIGN.md §5 and EXPERIMENTS.md). Each experiment
// corresponds to one claim in the paper's text; run all of them with
// `gridbench -exp all`, or a single one with e.g. `gridbench -exp e2`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridproxy/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run: e1..e9, comma-separated, or all")
	flag.Parse()

	want := map[string]bool{}
	if *exp == "all" {
		for i := 1; i <= 9; i++ {
			want[fmt.Sprintf("e%d", i)] = true
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	runners := []struct {
		name string
		fn   func() (experiments.Table, error)
	}{
		{"e1", func() (experiments.Table, error) {
			rows, err := experiments.E1(experiments.DefaultE1())
			return experiments.E1Table(rows), err
		}},
		{"e2", func() (experiments.Table, error) {
			rows, err := experiments.E2(experiments.DefaultE2())
			return experiments.E2Table(rows), err
		}},
		{"e3", func() (experiments.Table, error) {
			rows, err := experiments.E3(experiments.DefaultE3())
			return experiments.E3Table(rows), err
		}},
		{"e4", func() (experiments.Table, error) {
			rows, err := experiments.E4(experiments.DefaultE4())
			return experiments.E4Table(rows), err
		}},
		{"e5", func() (experiments.Table, error) {
			rows, err := experiments.E5(experiments.DefaultE5())
			return experiments.E5Table(rows), err
		}},
		{"e6", func() (experiments.Table, error) {
			return experiments.E6Table(experiments.E6(experiments.DefaultE6())), nil
		}},
		{"e7", func() (experiments.Table, error) {
			rows, err := experiments.E7(experiments.DefaultE7())
			return experiments.E7Table(rows), err
		}},
		{"e8", func() (experiments.Table, error) {
			rows, err := experiments.E8(experiments.DefaultE8())
			return experiments.E8Table(rows), err
		}},
		{"e9", func() (experiments.Table, error) {
			rows, err := experiments.E9(experiments.DefaultE9())
			return experiments.E9Table(rows), err
		}},
	}

	ran := 0
	for _, runner := range runners {
		if !want[runner.name] {
			continue
		}
		table, err := runner.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", runner.name, err)
		}
		fmt.Println(table.Render())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q (use e1..e9 or all)", *exp)
	}
	return nil
}
