// Command gridbench regenerates every experiment table of the
// reproduction (see DESIGN.md §5 and EXPERIMENTS.md). Each experiment
// corresponds to one claim in the paper's text; run all of them with
// `gridbench -exp all`, a single one with e.g. `gridbench -exp e2`, and
// list what exists with `gridbench -list`.
//
// With -json FILE the tool instead runs the tunnel data-path
// micro-benchmarks and merges a labeled run into FILE (the committed
// BENCH_tunnel.json artifact); -label names the run (default "after")
// and -bond sets the tunnel connection fan-out the throughput capture
// runs at (the committed "bonded-k4" row uses -bond 4).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridproxy/internal/experiments"
)

// e11Sites overrides E11's default N sweep with a single grid size; the
// CI smoke step runs `-exp e11 -e11n 64` so a convergence regression
// fails the build without paying for the N=1000 acceptance run. E11
// itself enforces its round budget: exceeding it is an error, not a
// table row.
var e11Sites = flag.Int("e11n", 0, "run E11 at this single grid size instead of its default sweep")

// e12Sites shrinks E12's grid for the CI smoke step (`-exp e12 -e12n
// 16`): the partition/gray/flap script, all four acceptance bars, and
// the determinism double-run still execute, at a fraction of the N=50
// acceptance run's cost. The minority scales to N/5 (minimum 2).
var e12Sites = flag.Int("e12n", 0, "run E12 at this grid size instead of the N=50 acceptance run")

// e13Clients shrinks E13's offered load for the CI smoke step (`-exp
// e13 -e13c 5000`): the 1×/4×/16× sweep, the drain phase, and every
// acceptance bar still run, at a fraction of the ≥100k-client
// acceptance run's cost. The value is the total client count across the
// sweep; it is split evenly over the multiplier phases.
var e13Clients = flag.Int("e13c", 0, "run E13 with this many total simulated clients instead of the 102k acceptance run")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

// runners lists every experiment with a one-line description (shown by
// -list) and the function that produces its table.
var runners = []struct {
	name string
	desc string
	fn   func() (experiments.Table, error)
}{
	{"e1", "MPI local vs proxy-multiplexed across sites", func() (experiments.Table, error) {
		rows, err := experiments.E1(experiments.DefaultE1())
		return experiments.E1Table(rows), err
	}},
	{"e2", "crypto cost at site edges vs on every node", func() (experiments.Table, error) {
		rows, err := experiments.E2(experiments.DefaultE2())
		return experiments.E2Table(rows), err
	}},
	{"e3", "load balancing vs MPI's round-robin placement", func() (experiments.Table, error) {
		rows, err := experiments.E3(experiments.DefaultE3())
		return experiments.E3Table(rows), err
	}},
	{"e4", "site-compiled monitoring vs polling every node", func() (experiments.Table, error) {
		rows, err := experiments.E4(experiments.DefaultE4())
		return experiments.E4Table(rows), err
	}},
	{"e5", "Kerberos-style tickets vs per-request auth", func() (experiments.Table, error) {
		rows, err := experiments.E5(experiments.DefaultE5())
		return experiments.E5Table(rows), err
	}},
	{"e6", "deployment footprint (modules per machine)", func() (experiments.Table, error) {
		return experiments.E6Table(experiments.E6(experiments.DefaultE6())), nil
	}},
	{"e7", "failure containment when a proxy dies", func() (experiments.Table, error) {
		rows, err := experiments.E7(experiments.DefaultE7())
		return experiments.E7Table(rows), err
	}},
	{"e8", "one multiplexed tunnel vs connection-per-stream", func() (experiments.Table, error) {
		rows, err := experiments.E8(experiments.DefaultE8())
		return experiments.E8Table(rows), err
	}},
	{"e9", "job survival: rank rescheduling across site death", func() (experiments.Table, error) {
		rows, err := experiments.E9(experiments.DefaultE9())
		return experiments.E9Table(rows), err
	}},
	{"e10", "data plane: striped cross-site staging, cold vs warm", func() (experiments.Table, error) {
		rows, err := experiments.E10(experiments.DefaultE10())
		return experiments.E10Table(rows), err
	}},
	{"e11", "control-plane scaling: gossip directory vs all-pairs", func() (experiments.Table, error) {
		cfg := experiments.DefaultE11()
		if *e11Sites > 0 {
			cfg.Ns = []int{*e11Sites}
		}
		rows, err := experiments.E11(cfg)
		return experiments.E11Table(rows), err
	}},
	{"e12", "partition tolerance: false-dead, reconvergence, fencing", func() (experiments.Table, error) {
		cfg := experiments.DefaultE12()
		if *e12Sites > 0 {
			cfg.Sites = *e12Sites
			cfg.Minority = *e12Sites / 5
			if cfg.Minority < 2 {
				cfg.Minority = 2
			}
		}
		rows, err := experiments.E12(cfg)
		return experiments.E12Table(rows), err
	}},
	{"e13", "gateway admission control: served/queued/shed under overload", func() (experiments.Table, error) {
		cfg := experiments.DefaultE13()
		if *e13Clients > 0 {
			per := *e13Clients / len(cfg.Multipliers)
			if per < len(cfg.Multipliers)*cfg.Capacity {
				// Keep at least one request per driver at the highest
				// multiplier so every phase exercises admission.
				per = len(cfg.Multipliers) * cfg.Capacity
			}
			cfg.Clients = per
		}
		rows, err := experiments.E13(cfg)
		return experiments.E13Table(rows), err
	}},
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run: e1..e10, comma-separated, or all")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonPath := flag.String("json", "", "capture tunnel micro-benchmarks into this JSON artifact instead of running experiments")
	label := flag.String("label", "after", "run label recorded with -json (e.g. before, after, bonded-k4)")
	bond := flag.Int("bond", 1, "tunnel bond width the -json throughput capture runs at")
	flag.Parse()

	if *jsonPath != "" {
		run, err := experiments.WriteBenchFileK(*jsonPath, *label, *bond)
		if err != nil {
			return err
		}
		for _, res := range run.Results {
			fmt.Printf("%-20s %10.2f MB/s %12.0f ns/op %8d B/op %4d allocs/op\n",
				res.Name, res.MBPerS, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
		fmt.Printf("recorded run %q (bond=%d) in %s\n", *label, *bond, *jsonPath)
		return nil
	}

	if *list {
		for _, runner := range runners {
			fmt.Printf("%-4s %s\n", runner.name, runner.desc)
		}
		return nil
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, runner := range runners {
			want[runner.name] = true
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	ran := 0
	for _, runner := range runners {
		if !want[runner.name] {
			continue
		}
		table, err := runner.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", runner.name, err)
		}
		fmt.Println(table.Render())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q (use -list to see e1..e11)", *exp)
	}
	return nil
}
