// Command gridproxyd runs a site's border proxy: the TLS-tunneled
// inter-site endpoint, the site-local client/node/splice services, the
// status collector, the scheduler, and (optionally) the web interface and
// the ticket-granting service.
//
// Configuration ("key = value" file, see -config):
//
//	site        = sitea              # this site's name
//	wan_addr    = 0.0.0.0:7100      # inter-site TLS listener
//	local_addr  = 127.0.0.1:7200    # site-local client service
//	                                 # (node reports: port+1, splice: port+2)
//	ca_dir      = certs             # CA directory (ca.crt needed)
//	cert        = proxy.sitea       # host credential name in ca_dir
//	users       = users.conf        # users/permissions file
//	peers       = siteb=10.0.0.2:7100,sitec=10.0.0.3:7100
//	policy      = least-loaded      # round-robin|least-loaded|weighted-speed|random
//	web_addr    = 127.0.0.1:7300    # web interface ("" disables)
//	web_auth    = false             # require a service ticket on the web
//	                                 # interface (needs ticket_secret); keep
//	                                 # web_addr loopback-only when false
//	ticket_secret = gate.secret     # shared-secret file: run the TGS with
//	                                 # deterministic keys so a gridgate
//	                                 # started from the same secret can
//	                                 # grant tickets this proxy validates
//	                                 # ("" keeps tickets disabled)
//	ticket_skew = 0s                # clock-skew tolerance for ticket
//	                                 # expiry checks; set it when the
//	                                 # granting gridgate runs on another
//	                                 # host (match its ticket_skew)
//	nodes       = 4                 # hosted node agents on this proxy host
//	node_speed  = 1.0
//	announce    = 30s               # inventory re-announce interval
//
// Peer-lifecycle knobs (all optional; see internal/peerlink defaults):
//
//	backoff_min       = 200ms       # first redial delay after a link drops
//	backoff_max       = 15s         # redial delay cap
//	heartbeat         = 3s          # peer probe interval (negative disables)
//	heartbeat_timeout = 1s          # per-probe deadline
//	heartbeat_misses  = 3           # consecutive misses before redial
//	rpc_timeout       = 10s         # default per-control-RPC deadline
//	hello_timeout     = 10s         # inbound session identification deadline
//	status_ttl        = 0           # serve cached global status this fresh
//	                                 # (0 disables caching)
//
// Membership/gossip knobs (all optional; see core.GossipConfig and
// peerlink.CacheConfig defaults). With gossip on, `peers` only needs ONE
// bootstrap entry: the directory learns every other site epidemically
// and tunnels are dialed on demand.
//
//	gossip_interval   = 1s          # gossip round period (negative disables)
//	summary_every     = 15s         # local status republication cadence
//	gossip_fanout     = 3           # targets per round
//	suspect_after     = 60s         # silence before an entry turns suspect
//	dead_after        = 30s         # unrefuted suspicion before dead
//	dead_retention    = 5m          # how long dead entries keep gossiping
//	probe_fanout      = 2           # confirmers asked before a failed
//	                                 # contact escalates (negative: none)
//	vouch_window      = 30s         # direct contact this fresh overrides
//	                                 # a death rumor (negative disables)
//	health_max        = 4           # Lifeguard local-health cap; timeouts
//	                                 # stretch by (1 + score)
//	max_tunnels       = 32          # live-tunnel LRU cap (negative unlimited)
//	idle_close        = 2m          # close tunnels idle this long
//	                                 # (negative disables)
//	breaker_threshold = 3           # consecutive dial failures that open a
//	                                 # peer's circuit (negative disables)
//	breaker_min_open  = 500ms       # first open window, doubled per reopen
//	breaker_max_open  = 30s         # open-window cap
//
// Job-lifecycle knobs (all optional; see internal/core defaults):
//
//	orphan_grace      = 45s         # reap hosted apps whose origin link
//	                                 # stays dead this long (negative disables)
//	job_ttl           = 15m         # prune terminal jobs after this long
//	                                 # (negative disables)
//	reschedule_budget = 2           # site deaths survived per job before
//	                                 # the launch fails (negative disables)
//	fence_retry       = 2s          # redelivery cadence for split-brain
//	                                 # fences to sites still unreachable
//	                                 # (negative disables the deliverer)
//
// Data-plane knobs (all optional; see internal/stage defaults):
//
//	store_dir         = stage       # persist blobs here across restarts
//	                                 # ("" keeps the cache in memory only)
//	store_max_bytes   = 268435456   # staging-cache cap before LRU eviction
//	                                 # (negative disables the cap)
//	chunk_size        = 262144      # transfer checksum/retry unit in bytes
//	stripes           = 4           # parallel streams per cross-site pull
//
// Tunnel knobs (all optional; see internal/tunnel defaults). Proxies run
// RTT-adaptive flow control by default; bonding engages only when BOTH
// ends configure bond_conns > 1, and a peer predating the BOND extension
// negotiates down to a single connection automatically:
//
//	bond_conns        = 1           # parallel connections per peer tunnel
//	window_min        = 65536       # adaptive per-stream window floor
//	window_max        = 4194304     # adaptive per-stream window ceiling
//	bdp_gain          = 2.0         # window as multiple of measured BDP
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridproxy/internal/balance"
	"gridproxy/internal/ca"
	"gridproxy/internal/config"
	"gridproxy/internal/core"
	"gridproxy/internal/gate"
	"gridproxy/internal/logging"
	"gridproxy/internal/metrics"
	"gridproxy/internal/node"
	"gridproxy/internal/peerlink"
	"gridproxy/internal/programs"
	"gridproxy/internal/stage"
	"gridproxy/internal/ticket"
	"gridproxy/internal/transport"
	"gridproxy/internal/tunnel"
	"gridproxy/internal/webui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridproxyd:", err)
		os.Exit(1)
	}
}

func run() error {
	configPath := flag.String("config", "gridproxy.conf", "configuration file")
	logLevel := flag.String("log", "info", "log level (debug|info|warn|error)")
	flag.Parse()

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	log := logging.New("gridproxyd", logging.WithLevel(level))

	cfg, err := config.LoadFile(*configPath)
	if err != nil {
		return err
	}
	siteName := cfg.Get("site", "")
	if siteName == "" {
		return fmt.Errorf("config: site is required")
	}
	caDir := cfg.Get("ca_dir", "certs")
	certName := cfg.Get("cert", "proxy."+siteName)

	authority, err := ca.Load(caDir)
	if err != nil {
		return fmt.Errorf("load CA: %w", err)
	}
	cred, err := ca.LoadCredential(caDir, certName)
	if err != nil {
		return fmt.Errorf("load host credential: %w", err)
	}
	users, err := config.LoadUsers(cfg.Get("users", "users.conf"))
	if err != nil {
		return err
	}
	policy, err := balance.New(cfg.Get("policy", "least-loaded"), time.Now().UnixNano())
	if err != nil {
		return err
	}

	lifecycle, err := lifecycleFromConfig(cfg)
	if err != nil {
		return err
	}
	jobs, err := jobsFromConfig(cfg)
	if err != nil {
		return err
	}
	gossip, peerCache, err := gossipFromConfig(cfg)
	if err != nil {
		return err
	}
	stagecfg, err := stageFromConfig(cfg)
	if err != nil {
		return err
	}
	tunnelcfg, err := tunnelFromConfig(cfg)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	local := transport.NewLabelTCP()
	wan := transport.NewTLS(transport.TCP{}, cred, authority.CertPool(), reg)

	// With a shared ticket secret, this proxy runs the TGS with
	// deterministically derived keys: a gridgate (or another proxy)
	// started from the same secret grants tickets this proxy validates,
	// with no key exchange beyond the secret file itself.
	var tgs *ticket.GrantingService
	var ticketKey []byte
	ticketSkew, err := cfg.Duration("ticket_skew", 0)
	if err != nil {
		return err
	}
	if secretPath := cfg.Get("ticket_secret", ""); secretPath != "" {
		secret, err := os.ReadFile(secretPath)
		if err != nil {
			return fmt.Errorf("read ticket secret: %w", err)
		}
		tgs, err = ticket.NewGrantingService(users, ticket.WithMasterKey(secret), ticket.WithMetrics(reg))
		if err != nil {
			return err
		}
		if ticketKey, err = tgs.RegisterService(core.ServiceName(siteName)); err != nil {
			return err
		}
	}

	proxy, err := core.New(core.Config{
		Site:       siteName,
		WANAddr:    cfg.Get("wan_addr", "0.0.0.0:7100"),
		LocalAddr:  cfg.Get("local_addr", "127.0.0.1:7200"),
		WAN:        wan,
		Local:      local,
		Users:      users,
		TGS:        tgs,
		TicketKey:  ticketKey,
		TicketSkew: ticketSkew,
		Policy:     policy,
		Lifecycle:  lifecycle,
		Gossip:     gossip,
		PeerCache:  peerCache,
		Jobs:       jobs,
		Stage:      stagecfg,
		Tunnel:     tunnelcfg,
		Metrics:    reg,
		Logger:     log,
	})
	if err != nil {
		return err
	}

	// Hosted node agents: the simplest deployment runs the site's
	// compute agents inside the proxy host.
	nodes, err := cfg.Int("nodes", 0)
	if err != nil {
		return err
	}
	speed := 1.0
	if cfg.Has("node_speed") {
		if _, err := fmt.Sscanf(cfg.Get("node_speed", "1.0"), "%g", &speed); err != nil {
			return fmt.Errorf("config: node_speed: %w", err)
		}
	}
	for i := 0; i < nodes; i++ {
		agent := node.New(fmt.Sprintf("%s-n%d", siteName, i), siteName, local,
			node.WithHW(node.HWProfile{Speed: speed, RAMMB: 2048, DiskMB: 64 << 10, RAMPerProcMB: 64}),
			node.WithLogger(log))
		programs.RegisterAll(agent)
		proxy.AttachNode(agent)
	}

	if err := proxy.Start(); err != nil {
		return err
	}
	defer proxy.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Connect to configured peers.
	if peers := cfg.Get("peers", ""); peers != "" {
		for _, entry := range strings.Split(peers, ",") {
			name, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
			if !ok {
				return fmt.Errorf("config: peers entry %q must be site=addr", entry)
			}
			if err := proxy.Connect(ctx, name, addr); err != nil {
				log.Warn("peer connect failed (supervisor keeps retrying)", "site", name, "err", err)
			}
		}
	}

	// Periodic inventory re-announce.
	announceEvery, err := cfg.Duration("announce", 30*time.Second)
	if err != nil {
		return err
	}
	go func() {
		ticker := time.NewTicker(announceEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				proxy.AnnounceAll(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()

	// Web interface. The handler itself is unauthenticated, so it either
	// stays loopback-only behind a gridgate (which serves it under /ui/
	// behind the session check) or gets gated here with the ticket
	// validator when web_auth is on.
	if webAddr := cfg.Get("web_addr", ""); webAddr != "" {
		webAuth, err := cfg.Bool("web_auth", false)
		if err != nil {
			return err
		}
		var handler http.Handler = webui.New(proxy)
		if webAuth {
			if tgs == nil || ticketKey == nil {
				return fmt.Errorf("config: web_auth requires ticket_secret")
			}
			handler = gate.TicketAuth(ticket.NewValidator(core.ServiceName(siteName), ticketKey, reg).WithValidatorSkew(ticketSkew), handler)
		}
		server := &http.Server{
			Addr:              webAddr,
			Handler:           handler,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("web interface failed", "err", err)
			}
		}()
		defer server.Close()
		log.Info("web interface listening", "addr", webAddr)
	}

	log.Info("gridproxyd running", "site", siteName)
	<-ctx.Done()
	log.Info("shutting down")
	return nil
}

// lifecycleFromConfig reads the peer-lifecycle knobs. Absent keys stay
// zero so peerlink's defaults apply; negative durations disable the
// corresponding mechanism.
func lifecycleFromConfig(cfg *config.Config) (peerlink.Config, error) {
	var lc peerlink.Config
	var err error
	if lc.BackoffMin, err = cfg.Duration("backoff_min", 0); err != nil {
		return lc, err
	}
	if lc.BackoffMax, err = cfg.Duration("backoff_max", 0); err != nil {
		return lc, err
	}
	if lc.HeartbeatInterval, err = cfg.Duration("heartbeat", 0); err != nil {
		return lc, err
	}
	if lc.HeartbeatTimeout, err = cfg.Duration("heartbeat_timeout", 0); err != nil {
		return lc, err
	}
	if lc.HeartbeatMisses, err = cfg.Int("heartbeat_misses", 0); err != nil {
		return lc, err
	}
	if lc.RPCTimeout, err = cfg.Duration("rpc_timeout", 0); err != nil {
		return lc, err
	}
	if lc.HelloTimeout, err = cfg.Duration("hello_timeout", 0); err != nil {
		return lc, err
	}
	if lc.StatusTTL, err = cfg.Duration("status_ttl", 0); err != nil {
		return lc, err
	}
	return lc, nil
}

// gossipFromConfig reads the membership-gossip and connection-cache
// knobs. Absent keys stay zero so the GossipConfig / CacheConfig
// defaults apply; negative values disable the mechanism.
func gossipFromConfig(cfg *config.Config) (core.GossipConfig, peerlink.CacheConfig, error) {
	var gc core.GossipConfig
	var cc peerlink.CacheConfig
	var err error
	if gc.Interval, err = cfg.Duration("gossip_interval", 0); err != nil {
		return gc, cc, err
	}
	if gc.SummaryEvery, err = cfg.Duration("summary_every", 0); err != nil {
		return gc, cc, err
	}
	if gc.Fanout, err = cfg.Int("gossip_fanout", 0); err != nil {
		return gc, cc, err
	}
	if gc.SuspectAfter, err = cfg.Duration("suspect_after", 0); err != nil {
		return gc, cc, err
	}
	if gc.DeadAfter, err = cfg.Duration("dead_after", 0); err != nil {
		return gc, cc, err
	}
	if gc.DeadRetention, err = cfg.Duration("dead_retention", 0); err != nil {
		return gc, cc, err
	}
	if gc.ProbeFanout, err = cfg.Int("probe_fanout", 0); err != nil {
		return gc, cc, err
	}
	if gc.VouchWindow, err = cfg.Duration("vouch_window", 0); err != nil {
		return gc, cc, err
	}
	if gc.HealthMax, err = cfg.Int("health_max", 0); err != nil {
		return gc, cc, err
	}
	if cc.MaxTunnels, err = cfg.Int("max_tunnels", 0); err != nil {
		return gc, cc, err
	}
	if cc.IdleClose, err = cfg.Duration("idle_close", 0); err != nil {
		return gc, cc, err
	}
	if cc.BreakerThreshold, err = cfg.Int("breaker_threshold", 0); err != nil {
		return gc, cc, err
	}
	if cc.BreakerMinOpen, err = cfg.Duration("breaker_min_open", 0); err != nil {
		return gc, cc, err
	}
	if cc.BreakerMaxOpen, err = cfg.Duration("breaker_max_open", 0); err != nil {
		return gc, cc, err
	}
	return gc, cc, nil
}

// stageFromConfig reads the data-plane knobs. Absent keys stay zero so
// stage's defaults apply; a negative store_max_bytes removes the cap.
func stageFromConfig(cfg *config.Config) (stage.Config, error) {
	var sc stage.Config
	sc.Dir = cfg.Get("store_dir", "")
	maxBytes, err := cfg.Int("store_max_bytes", 0)
	if err != nil {
		return sc, err
	}
	sc.MaxBytes = int64(maxBytes)
	if sc.ChunkSize, err = cfg.Int("chunk_size", 0); err != nil {
		return sc, err
	}
	if sc.Stripes, err = cfg.Int("stripes", 0); err != nil {
		return sc, err
	}
	return sc, nil
}

// tunnelFromConfig reads the inter-site session knobs. Absent keys stay
// zero so the tunnel defaults apply (and core turns adaptive flow
// control on).
func tunnelFromConfig(cfg *config.Config) (tunnel.Config, error) {
	var tc tunnel.Config
	var err error
	if tc.BondConns, err = cfg.Int("bond_conns", 0); err != nil {
		return tc, err
	}
	if tc.WindowMin, err = cfg.Int("window_min", 0); err != nil {
		return tc, err
	}
	if tc.WindowMax, err = cfg.Int("window_max", 0); err != nil {
		return tc, err
	}
	if tc.BDPGain, err = cfg.Float("bdp_gain", 0); err != nil {
		return tc, err
	}
	return tc, nil
}

// jobsFromConfig reads the job-lifecycle knobs. Absent keys stay zero so
// core's defaults apply; negative values disable the mechanism.
func jobsFromConfig(cfg *config.Config) (core.JobConfig, error) {
	var jc core.JobConfig
	var err error
	if jc.OrphanGrace, err = cfg.Duration("orphan_grace", 0); err != nil {
		return jc, err
	}
	if jc.TerminalTTL, err = cfg.Duration("job_ttl", 0); err != nil {
		return jc, err
	}
	if jc.RescheduleBudget, err = cfg.Int("reschedule_budget", 0); err != nil {
		return jc, err
	}
	if jc.FenceRetry, err = cfg.Duration("fence_retry", 0); err != nil {
		return jc, err
	}
	return jc, nil
}
