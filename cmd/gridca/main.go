// Command gridca manages the grid-wide Certification Authority: it
// creates the CA and issues host certificates for proxies and user
// certificates for digital-signature authentication.
//
// Usage:
//
//	gridca init  -dir certs -grid mygrid
//	gridca host  -dir certs -name proxy.siteA -hosts 127.0.0.1,sitea.example.org
//	gridca user  -dir certs -name alice
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridproxy/internal/ca"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridca:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: gridca init|host|user [flags]")
	}
	switch args[0] {
	case "init":
		fs := flag.NewFlagSet("init", flag.ContinueOnError)
		dir := fs.String("dir", "certs", "directory to store CA material")
		grid := fs.String("grid", "grid", "grid name (CA subject)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		authority, err := ca.New(*grid)
		if err != nil {
			return err
		}
		if err := authority.Save(*dir); err != nil {
			return err
		}
		fmt.Printf("created CA for grid %q in %s\n", *grid, *dir)
		return nil
	case "host", "user":
		fs := flag.NewFlagSet(args[0], flag.ContinueOnError)
		dir := fs.String("dir", "certs", "directory holding the CA")
		name := fs.String("name", "", "certificate common name")
		hosts := fs.String("hosts", "", "comma-separated DNS names / IPs (host certs)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *name == "" {
			return fmt.Errorf("-name is required")
		}
		authority, err := ca.Load(*dir)
		if err != nil {
			return err
		}
		var cred *ca.Credential
		if args[0] == "host" {
			var hostList []string
			if *hosts != "" {
				hostList = strings.Split(*hosts, ",")
			}
			cred, err = authority.IssueHost(*name, hostList...)
		} else {
			cred, err = authority.IssueUser(*name)
		}
		if err != nil {
			return err
		}
		fileName := strings.ReplaceAll(*name, "/", "_")
		if err := ca.SaveCredential(cred, *dir, fileName); err != nil {
			return err
		}
		fmt.Printf("issued %s certificate %s (%s.crt / %s.key in %s)\n",
			args[0], *name, fileName, fileName, *dir)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
