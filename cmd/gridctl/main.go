// Command gridctl is the grid's command-line interface (the paper's
// command-line access layer). It talks to the local site proxy over TCP.
//
// Usage:
//
//	gridctl -proxy 127.0.0.1:7200 -user alice -password secret status
//	gridctl ... members                        # membership directory: state, summary age, tunnel held
//	gridctl ... submit -program pi -procs 8 -args 1000000
//	gridctl ... wait -job <id>
//	gridctl ... cancel <id>
//	gridctl ... jobs
//	gridctl ... resources -kind node
//	gridctl ... ping
//	gridctl ... tunnel -app tun1 -site siteb -target legacy-echo:7000 -listen 127.0.0.1:9000
//
// Data-plane commands (the content-addressed staging store, DESIGN.md §12):
//
//	gridctl ... put params.bin                 # stage a file, print its ref
//	gridctl ... get -o out.bin <hash>          # fetch a blob by hash
//	gridctl ... stat <hash>                    # is the blob staged, and how big
//	gridctl ... submit -program fit -procs 8 -in params.bin -out result-0
//	gridctl ... outputs -job <id> -fetch dir   # list/download a job's outputs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gridproxy/internal/core"
	"gridproxy/internal/grid"
	"gridproxy/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridctl:", err)
		os.Exit(1)
	}
}

func run() error {
	proxyAddr := flag.String("proxy", "127.0.0.1:7200", "site proxy client address")
	user := flag.String("user", "", "grid user")
	password := flag.String("password", "", "grid password")
	timeout := flag.Duration("timeout", 60*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		return fmt.Errorf("usage: gridctl [flags] ping|status|members|submit|wait|cancel|jobs|outputs|resources|put|get|stat|tunnel")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client, err := grid.Dial(ctx, transport.TCP{}, *proxyAddr)
	if err != nil {
		return err
	}
	defer client.Close()

	login := func() error {
		if *user == "" {
			return fmt.Errorf("-user and -password are required for this command")
		}
		return client.Login(ctx, *user, *password)
	}

	switch args[0] {
	case "ping":
		start := time.Now()
		if err := client.Ping(ctx); err != nil {
			return err
		}
		fmt.Printf("pong from %s in %v\n", *proxyAddr, time.Since(start).Round(time.Microsecond))
		return nil

	case "status":
		fs := flag.NewFlagSet("status", flag.ContinueOnError)
		sites := fs.String("sites", "", "comma-separated site filter")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if err := login(); err != nil {
			return err
		}
		var filter []string
		if *sites != "" {
			filter = strings.Split(*sites, ",")
		}
		summaries, err := client.Status(ctx, filter...)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6s %4s %10s %12s %12s %8s %6s\n",
			"SITE", "NODES", "UP", "CPU FREE%", "RAM FREE MB", "DISK FREE MB", "LOAD", "PROCS")
		for _, s := range summaries {
			fmt.Printf("%-10s %6d %4d %10.1f %12d %12d %8.2f %6d\n",
				s.Site, s.Nodes, s.NodesUp, s.CPUFreePct, s.RAMFreeMB, s.DiskFreeMB, s.Load1, s.RunningProcs)
		}
		return nil

	case "members":
		if err := login(); err != nil {
			return err
		}
		members, err := client.Members(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-8s %5s %12s %11s %11s %7s %5s %9s  %s\n",
			"SITE", "STATE", "INC", "SUMMARY AGE", "LAST HEARD", "SUSPECT FOR", "TUNNEL", "BOND", "RTT", "ADDR")
		for _, m := range members {
			age := "-"
			if m.HasSummary {
				age = m.SummaryAge.Round(time.Millisecond).String()
			}
			heard := m.LastHeard.Round(time.Millisecond).String()
			suspect := "-"
			if m.Suspected {
				suspect = m.SuspectFor.Round(time.Millisecond).String()
			}
			tunnel := "n"
			if m.Tunnel {
				tunnel = "y"
			}
			bond, rtt := "-", "-"
			if m.BondConns > 0 {
				bond = fmt.Sprintf("%d", m.BondConns)
			}
			if m.RTT > 0 {
				rtt = m.RTT.Round(time.Microsecond).String()
			}
			fmt.Printf("%-10s %-8s %5d %12s %11s %11s %7s %5s %9s  %s\n",
				m.Site, m.State, m.Incarnation, age, heard, suspect, tunnel, bond, rtt, m.Addr)
		}
		return nil

	case "submit":
		fs := flag.NewFlagSet("submit", flag.ContinueOnError)
		program := fs.String("program", "", "program name installed on nodes")
		procs := fs.Int("procs", 1, "number of MPI processes")
		progArgs := fs.String("args", "", "comma-separated program arguments")
		stageIn := fs.String("in", "", "comma-separated files to stage in (each is put first)")
		stageOut := fs.String("out", "", "comma-separated output names to stage back (empty = all)")
		wait := fs.Bool("wait", false, "wait for completion")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *program == "" {
			return fmt.Errorf("-program is required")
		}
		if err := login(); err != nil {
			return err
		}
		var pargs []string
		if *progArgs != "" {
			pargs = strings.Split(*progArgs, ",")
		}
		spec := grid.JobSpec{Program: *program, Args: pargs, Procs: *procs}
		if *stageIn != "" {
			for _, path := range strings.Split(*stageIn, ",") {
				path = strings.TrimSpace(path)
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				ref, err := client.Put(ctx, filepath.Base(path), data)
				if err != nil {
					return fmt.Errorf("stage %s: %w", path, err)
				}
				fmt.Printf("staged: %s %s %d\n", ref.Name, ref.Hash, ref.Size)
				spec.StageIn = append(spec.StageIn, ref)
			}
		}
		if *stageOut != "" {
			spec.StageOut = strings.Split(*stageOut, ",")
		}
		jobID, err := client.SubmitJob(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println("job:", jobID)
		if *wait {
			if err := client.WaitJob(ctx, jobID); err != nil {
				return err
			}
			fmt.Println("job done")
		}
		return nil

	case "wait":
		fs := flag.NewFlagSet("wait", flag.ContinueOnError)
		jobID := fs.String("job", "", "job id")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *jobID == "" {
			return fmt.Errorf("-job is required")
		}
		if err := login(); err != nil {
			return err
		}
		if err := client.WaitJob(ctx, *jobID); err != nil {
			return err
		}
		fmt.Println("job done")
		return nil

	case "cancel":
		fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
		jobID := fs.String("job", "", "job (application) id")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		target := *jobID
		if target == "" && fs.NArg() > 0 {
			target = fs.Arg(0)
		}
		if target == "" {
			return fmt.Errorf("usage: gridctl cancel <appID> (or -job <appID>)")
		}
		if err := login(); err != nil {
			return err
		}
		if err := client.Cancel(ctx, target); err != nil {
			return err
		}
		fmt.Println("job canceled:", target)
		return nil

	case "jobs":
		if err := login(); err != nil {
			return err
		}
		jobs, err := client.Jobs(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-10s %s\n", "JOB", "STATE", "DETAIL")
		for _, j := range jobs {
			fmt.Printf("%-20s %-10s %s\n", j.ID, j.State, j.Detail)
		}
		return nil

	case "put":
		fs := flag.NewFlagSet("put", flag.ContinueOnError)
		name := fs.String("name", "", "blob name visible to ranks (default: file basename)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: gridctl put [-name n] <file>")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		if *name == "" {
			*name = filepath.Base(fs.Arg(0))
		}
		if err := login(); err != nil {
			return err
		}
		ref, err := client.Put(ctx, *name, data)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %s\n%-8s %s\n%-8s %d\n", "name", ref.Name, "hash", ref.Hash, "size", ref.Size)
		return nil

	case "get":
		fs := flag.NewFlagSet("get", flag.ContinueOnError)
		out := fs.String("o", "", "output file (default: stdout)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: gridctl get [-o file] <hash>")
		}
		if err := login(); err != nil {
			return err
		}
		data, err := client.Get(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		if *out == "" {
			_, err = os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(*out, data, 0o644)

	case "stat":
		fs := flag.NewFlagSet("stat", flag.ContinueOnError)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: gridctl stat <hash>")
		}
		if err := login(); err != nil {
			return err
		}
		size, ok, err := client.Stat(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("not staged")
			return nil
		}
		fmt.Printf("staged, %d bytes\n", size)
		return nil

	case "outputs":
		fs := flag.NewFlagSet("outputs", flag.ContinueOnError)
		jobID := fs.String("job", "", "job id")
		fetch := fs.String("fetch", "", "download each output into this directory")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *jobID == "" {
			return fmt.Errorf("-job is required")
		}
		if err := login(); err != nil {
			return err
		}
		refs, err := client.JobOutputs(ctx, *jobID)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10s  %s\n", "NAME", "SIZE", "HASH")
		for _, ref := range refs {
			fmt.Printf("%-20s %10d  %s\n", ref.Name, ref.Size, ref.Hash)
		}
		if *fetch != "" {
			if err := os.MkdirAll(*fetch, 0o755); err != nil {
				return err
			}
			for _, ref := range refs {
				data, err := client.Get(ctx, ref.Hash)
				if err != nil {
					return fmt.Errorf("fetch %s: %w", ref.Name, err)
				}
				path := filepath.Join(*fetch, filepath.Base(ref.Name))
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
		return nil

	case "resources":
		fs := flag.NewFlagSet("resources", flag.ContinueOnError)
		kind := fs.String("kind", "node", "resource kind")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if err := login(); err != nil {
			return err
		}
		resources, err := client.Resources(ctx, *kind, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-12s %-10s %s\n", "SITE", "NAME", "KIND", "ATTRS")
		for _, r := range resources {
			var attrs []string
			for k, v := range r.Attrs {
				attrs = append(attrs, k+"="+v)
			}
			fmt.Printf("%-10s %-12s %-10s %s\n", r.Site, r.Name, r.Kind, strings.Join(attrs, " "))
		}
		return nil

	case "tunnel":
		fs := flag.NewFlagSet("tunnel", flag.ContinueOnError)
		app := fs.String("app", "", "tunnel application id (registered at the remote proxy)")
		targetSite := fs.String("site", "", "destination site")
		targetAddr := fs.String("target", "", "destination address inside the site")
		listen := fs.String("listen", "127.0.0.1:0", "local forwarder listen address")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *app == "" || *targetSite == "" || *targetAddr == "" {
			return fmt.Errorf("-app, -site and -target are required")
		}
		if err := login(); err != nil {
			return err
		}
		return runForwarder(client, *proxyAddr, *listen, *app, *targetSite, *targetAddr)

	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// runForwarder accepts local TCP connections and splices each through the
// grid's secure tunnel to the target — "tunneling of traffic between
// sites, regardless of the application used".
func runForwarder(client *grid.Client, proxyAddr, listen, app, targetSite, targetAddr string) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	spliceAddr := core.SpliceAddr(proxyAddr)
	fmt.Printf("forwarding %s -> %s/%s (splice via %s); ctrl-c to stop\n",
		ln.Addr(), targetSite, targetAddr, spliceAddr)
	for {
		local, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer local.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			remote, err := client.Tunnel(ctx, spliceAddr, app, targetSite, targetAddr)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "tunnel open failed:", err)
				return
			}
			defer remote.Close()
			done := make(chan struct{}, 2)
			go func() { _, _ = io.Copy(remote, local); done <- struct{}{} }()
			go func() { _, _ = io.Copy(local, remote); done <- struct{}{} }()
			<-done
		}()
	}
}
