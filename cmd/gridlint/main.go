// Command gridlint checks gridproxy's cross-layer invariants — the
// conventions the compiler cannot see (DESIGN §14). It runs the analyzer
// suite from internal/lint/analyzers in two modes:
//
// Standalone (the usual way, and what CI gates on):
//
//	go run ./cmd/gridlint ./...
//
// loads the matched packages plus their in-module dependencies from
// source, runs every analyzer with facts flowing along the import graph,
// then runs the whole-program checks (dead protocol codes, unused metric
// constants). Exit status 1 means findings.
//
// As a vet tool:
//
//	go build -o /tmp/gridlint ./cmd/gridlint
//	go vet -vettool=/tmp/gridlint ./...
//
// speaks the go vet unit-checker protocol: per-package analysis with facts
// serialized between compilation units, incremental under the go build
// cache. Whole-program checks do not run in this mode — use the
// standalone form for the full gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gridproxy/internal/lint/analyzers"
	"gridproxy/internal/lint/driver"
	"gridproxy/internal/lint/unitchecker"
)

const version = "1"

func main() {
	args := os.Args[1:]
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")) {
		os.Exit(unitchecker.Main("gridlint", version, analyzers.Suite(), args))
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array of {file,line,column,analyzer,message}")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gridlint [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var n int
	var err error
	if *jsonOut {
		var found []driver.Finding
		found, err = driver.Findings(".", patterns, analyzers.Suite())
		if err == nil {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if found == nil {
				found = []driver.Finding{} // `[]`, never `null`: CI pipes this to jq
			}
			if encErr := enc.Encode(found); encErr != nil {
				err = encErr
			}
			n = len(found)
		}
	} else {
		n, err = driver.Run(os.Stdout, ".", patterns, analyzers.Suite())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridlint: %v\n", err)
		os.Exit(1)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
